#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "dag/dag_store.h"
#include "dag/types.h"

namespace clandag {
namespace {

BlockInfo MakeBlock(NodeId proposer, Round round, uint32_t tx_count) {
  BlockInfo b;
  b.proposer = proposer;
  b.round = round;
  b.created_at = 1000;
  b.tx_count = tx_count;
  b.tx_size = 512;
  return b;
}

TEST(BlockInfo, SyntheticWireSizeInflates) {
  BlockInfo b = MakeBlock(1, 2, 6000);
  EXPECT_TRUE(b.IsSynthetic());
  EXPECT_EQ(b.PayloadSize(), 6000u * 512u);  // The paper's 3 MB proposal.
  EXPECT_GT(b.WireSize(), b.PayloadSize());
}

TEST(BlockInfo, RealPayloadUsesActualSize) {
  BlockInfo b = MakeBlock(1, 2, 3);
  b.payload = Bytes(100, 0xaa);
  EXPECT_FALSE(b.IsSynthetic());
  EXPECT_EQ(b.PayloadSize(), 100u);
}

TEST(BlockInfo, SerializeParseRoundTrip) {
  BlockInfo b = MakeBlock(3, 9, 42);
  b.payload = ToBytes("actual transactions");
  Writer w;
  b.Serialize(w);
  Reader r(w.Buffer());
  BlockInfo parsed = BlockInfo::Parse(r);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(b, parsed);
}

TEST(BlockInfo, DigestIsDeterministicAndSensitive) {
  BlockInfo a = MakeBlock(1, 2, 10);
  BlockInfo b = MakeBlock(1, 2, 10);
  EXPECT_EQ(a.ComputeDigest(), b.ComputeDigest());
  b.tx_count = 11;
  EXPECT_NE(a.ComputeDigest(), b.ComputeDigest());
}

Vertex MakeVertex(Round round, NodeId source) {
  Vertex v;
  v.round = round;
  v.source = source;
  return v;
}

TEST(Vertex, SerializeParseRoundTrip) {
  Vertex v = MakeVertex(5, 2);
  v.block_digest = Digest::Of(ToBytes("block"));
  v.block_tx_count = 100;
  v.block_created_at = 777;
  v.strong_edges = {StrongEdge{0, Digest::Of(ToBytes("a"))},
                    StrongEdge{1, Digest::Of(ToBytes("b"))}};
  v.weak_edges = {WeakEdge{2, 3, Digest::Of(ToBytes("c"))}};
  Writer w;
  v.Serialize(w);
  Reader r(w.Buffer());
  Vertex parsed = Vertex::Parse(r);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(v, parsed);
}

TEST(Vertex, SerializeParseWithCerts) {
  Keychain keychain(5, 4);
  Vertex v = MakeVertex(3, 1);
  SignerBitmap bm(4);
  std::vector<Signature> parts;
  for (NodeId id : {0u, 1u, 2u}) {
    bm.Set(id);
    parts.push_back(keychain.Sign(id, TimeoutCert::SignedMessage(2)));
  }
  TimeoutCert tc;
  tc.round = 2;
  tc.sig = MultiSig::Aggregate(bm, parts);
  v.tc = tc;
  Writer w;
  v.Serialize(w);
  Reader r(w.Buffer());
  Vertex parsed = Vertex::Parse(r);
  EXPECT_TRUE(r.ok());
  ASSERT_TRUE(parsed.tc.has_value());
  EXPECT_TRUE(parsed.tc->Verify(keychain, 3));
  EXPECT_FALSE(parsed.nvc.has_value());
}

TEST(Vertex, DigestChangesWithEdges) {
  Vertex a = MakeVertex(1, 0);
  Vertex b = MakeVertex(1, 0);
  b.strong_edges.push_back(StrongEdge{1, Digest()});
  EXPECT_NE(a.ComputeDigest(), b.ComputeDigest());
}

TEST(Vertex, HasStrongEdgeTo) {
  Vertex v = MakeVertex(2, 0);
  v.strong_edges = {StrongEdge{3, Digest()}, StrongEdge{5, Digest()}};
  EXPECT_TRUE(v.HasStrongEdgeTo(3));
  EXPECT_TRUE(v.HasStrongEdgeTo(5));
  EXPECT_FALSE(v.HasStrongEdgeTo(4));
}

TEST(TimeoutCert, VerifyRejectsBelowQuorum) {
  Keychain keychain(5, 4);
  SignerBitmap bm(4);
  bm.Set(0);
  TimeoutCert tc;
  tc.round = 1;
  tc.sig = MultiSig::Aggregate(bm, {keychain.Sign(0, TimeoutCert::SignedMessage(1))});
  EXPECT_FALSE(tc.Verify(keychain, 3));
  EXPECT_TRUE(tc.Verify(keychain, 1));
}

TEST(NoVoteCert, VerifyChecksRoundBinding) {
  Keychain keychain(5, 4);
  SignerBitmap bm(4);
  std::vector<Signature> parts;
  for (NodeId id : {0u, 1u, 2u}) {
    bm.Set(id);
    parts.push_back(keychain.Sign(id, NoVoteCert::SignedMessage(7)));
  }
  NoVoteCert nvc;
  nvc.round = 8;  // Mismatched round: signatures cover round 7.
  nvc.sig = MultiSig::Aggregate(bm, parts);
  EXPECT_FALSE(nvc.Verify(keychain, 3));
  nvc.round = 7;
  EXPECT_TRUE(nvc.Verify(keychain, 3));
}

// ---- DagStore ----

class DagStoreTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kNodes = 4;

  DagStoreTest() : dag_(kNodes) {}

  // Builds and inserts a full round where every vertex references all
  // round-(r-1) vertices.
  void FillRound(Round r) {
    for (NodeId src = 0; src < kNodes; ++src) {
      InsertVertex(r, src, AllSources(r));
    }
  }

  std::vector<NodeId> AllSources(Round r) {
    std::vector<NodeId> out;
    if (r == 0) {
      return out;
    }
    for (NodeId src = 0; src < kNodes; ++src) {
      if (dag_.Has(r - 1, src)) {
        out.push_back(src);
      }
    }
    return out;
  }

  const Vertex* InsertVertex(Round r, NodeId src, const std::vector<NodeId>& parents) {
    Vertex v;
    v.round = r;
    v.source = src;
    for (NodeId p : parents) {
      v.strong_edges.push_back(StrongEdge{p, *dag_.DigestOf(r - 1, p)});
    }
    EXPECT_TRUE(dag_.Insert(std::move(v)));
    return dag_.Get(r, src);
  }

  DagStore dag_;
};

TEST_F(DagStoreTest, InsertAndLookup) {
  FillRound(0);
  EXPECT_EQ(dag_.CountAtRound(0), kNodes);
  EXPECT_TRUE(dag_.Has(0, 2));
  EXPECT_FALSE(dag_.Has(1, 0));
  EXPECT_EQ(dag_.Get(0, 1)->source, 1u);
  EXPECT_EQ(dag_.TotalVertices(), kNodes);
}

TEST_F(DagStoreTest, DuplicateInsertRejected) {
  FillRound(0);
  Vertex dup;
  dup.round = 0;
  dup.source = 0;
  EXPECT_FALSE(dag_.Insert(std::move(dup)));
}

TEST_F(DagStoreTest, ParentsPresent) {
  FillRound(0);
  Vertex v;
  v.round = 1;
  v.source = 0;
  v.strong_edges.push_back(StrongEdge{0, *dag_.DigestOf(0, 0)});
  EXPECT_TRUE(dag_.ParentsPresent(v));
  v.strong_edges.push_back(StrongEdge{9, Digest()});  // No such parent.
  EXPECT_FALSE(dag_.ParentsPresent(v));
}

TEST_F(DagStoreTest, StrongPathDirectEdge) {
  FillRound(0);
  FillRound(1);
  const Vertex* v = dag_.Get(1, 0);
  EXPECT_TRUE(dag_.StrongPathExists(*v, 0, 3));
}

TEST_F(DagStoreTest, StrongPathMultiHop) {
  FillRound(0);
  FillRound(1);
  FillRound(2);
  const Vertex* v = dag_.Get(2, 1);
  EXPECT_TRUE(dag_.StrongPathExists(*v, 0, 2));
}

TEST_F(DagStoreTest, StrongPathAbsentWhenNotLinked) {
  FillRound(0);
  // Round 1 vertices reference only parents {0, 1}: no path to (0, 3).
  for (NodeId src = 0; src < kNodes; ++src) {
    InsertVertex(1, src, {0, 1});
  }
  const Vertex* v = dag_.Get(1, 0);
  EXPECT_FALSE(dag_.StrongPathExists(*v, 0, 3));
}

TEST_F(DagStoreTest, StrongPathIgnoresWeakEdges) {
  FillRound(0);
  for (NodeId src = 0; src < kNodes; ++src) {
    InsertVertex(1, src, {0, 1});
  }
  // Round 2 vertex with a weak edge to (0,3): still no *strong* path.
  Vertex v;
  v.round = 2;
  v.source = 0;
  for (NodeId p : {0u, 1u}) {
    v.strong_edges.push_back(StrongEdge{p, *dag_.DigestOf(1, p)});
  }
  v.weak_edges.push_back(WeakEdge{0, 3, *dag_.DigestOf(0, 3)});
  ASSERT_TRUE(dag_.Insert(std::move(v)));
  EXPECT_FALSE(dag_.StrongPathExists(*dag_.Get(2, 0), 0, 3));
}

TEST_F(DagStoreTest, StrongPathToSelf) {
  FillRound(0);
  const Vertex* v = dag_.Get(0, 1);
  EXPECT_TRUE(dag_.StrongPathExists(*v, 0, 1));
  EXPECT_FALSE(dag_.StrongPathExists(*v, 0, 2));
}

TEST_F(DagStoreTest, OrderHistoryCollectsAndSorts) {
  FillRound(0);
  FillRound(1);
  auto ordered = dag_.OrderHistory(1, 2);
  // History of (1,2): all of round 0 plus itself.
  ASSERT_EQ(ordered.size(), kNodes + 1);
  for (size_t i = 0; i + 1 < ordered.size(); ++i) {
    const bool lt = ordered[i]->round < ordered[i + 1]->round ||
                    (ordered[i]->round == ordered[i + 1]->round &&
                     ordered[i]->source < ordered[i + 1]->source);
    EXPECT_TRUE(lt) << "not sorted at " << i;
  }
  EXPECT_EQ(dag_.OrderedCount(), kNodes + 1);
}

TEST_F(DagStoreTest, OrderHistorySkipsAlreadyOrdered) {
  FillRound(0);
  FillRound(1);
  auto first = dag_.OrderHistory(1, 0);
  auto second = dag_.OrderHistory(1, 1);
  // The second anchor only adds itself: round 0 was ordered by the first.
  EXPECT_EQ(first.size(), kNodes + 1);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0]->source, 1u);
}

TEST_F(DagStoreTest, OrderHistoryFollowsWeakEdges) {
  FillRound(0);
  // Round 1: only sources 0..2 propose, referencing {0,1,2}; (0,3) uncovered.
  for (NodeId src = 0; src < 3; ++src) {
    InsertVertex(1, src, {0, 1, 2});
  }
  Vertex v;
  v.round = 2;
  v.source = 0;
  for (NodeId p : {0u, 1u, 2u}) {
    v.strong_edges.push_back(StrongEdge{p, *dag_.DigestOf(1, p)});
  }
  v.weak_edges.push_back(WeakEdge{0, 3, *dag_.DigestOf(0, 3)});
  ASSERT_TRUE(dag_.Insert(std::move(v)));
  auto ordered = dag_.OrderHistory(2, 0);
  bool found = false;
  for (const Vertex* x : ordered) {
    if (x->round == 0 && x->source == 3) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "weak edge target must be ordered";
}

// Property: the final total order is independent of which anchor sequence
// ordered it (determinism across nodes reduces to determinism of
// OrderHistory given the same DAG).
TEST_F(DagStoreTest, OrderHistoryDeterministicAcrossStores) {
  DetRng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    DagStore a(kNodes);
    DagStore b(kNodes);
    // Build identical random-ish DAGs in both stores.
    std::vector<Vertex> all;
    for (NodeId src = 0; src < kNodes; ++src) {
      Vertex v;
      v.round = 0;
      v.source = src;
      all.push_back(v);
    }
    for (auto& v : all) {
      Vertex c1 = v;
      Vertex c2 = v;
      ASSERT_TRUE(a.Insert(std::move(c1)));
      ASSERT_TRUE(b.Insert(std::move(c2)));
    }
    for (Round r = 1; r <= 3; ++r) {
      for (NodeId src = 0; src < kNodes; ++src) {
        Vertex v;
        v.round = r;
        v.source = src;
        // Random 3-subset of parents.
        std::vector<NodeId> parents = {0, 1, 2, 3};
        rng.Shuffle(parents);
        parents.resize(3);
        std::sort(parents.begin(), parents.end());
        for (NodeId p : parents) {
          v.strong_edges.push_back(StrongEdge{p, *a.DigestOf(r - 1, p)});
        }
        Vertex c1 = v;
        Vertex c2 = v;
        ASSERT_TRUE(a.Insert(std::move(c1)));
        ASSERT_TRUE(b.Insert(std::move(c2)));
      }
    }
    auto oa = a.OrderHistory(3, 1);
    auto ob = b.OrderHistory(3, 1);
    ASSERT_EQ(oa.size(), ob.size());
    for (size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(oa[i]->round, ob[i]->round);
      EXPECT_EQ(oa[i]->source, ob[i]->source);
    }
  }
}

TEST_F(DagStoreTest, SelectWeakEdgesFindsUncovered) {
  FillRound(0);
  // Round 1 covers only {0,1,2}; (0,3) stays uncovered.
  for (NodeId src = 0; src < kNodes; ++src) {
    InsertVertex(1, src, {0, 1, 2});
  }
  auto weak = dag_.SelectWeakEdges(2);
  ASSERT_EQ(weak.size(), 1u);
  EXPECT_EQ(weak[0].round, 0u);
  EXPECT_EQ(weak[0].source, 3u);
}

TEST_F(DagStoreTest, SelectWeakEdgesExcludesRecentRounds) {
  FillRound(0);
  FillRound(1);
  // Round 1 tips are uncovered but too recent for a round-2 proposal.
  EXPECT_TRUE(dag_.SelectWeakEdges(2).empty());
}

TEST_F(DagStoreTest, PruneBelowDropsOrderedRounds) {
  FillRound(0);
  FillRound(1);
  FillRound(2);
  dag_.OrderHistory(2, 0);  // Orders everything reachable.
  for (NodeId src = 1; src < kNodes; ++src) {
    dag_.OrderHistory(2, src);
  }
  size_t before = dag_.TotalVertices();
  dag_.PruneBelow(2);
  EXPECT_LT(dag_.TotalVertices(), before);
  EXPECT_FALSE(dag_.Has(0, 0));
  EXPECT_TRUE(dag_.Has(2, 0));
}

TEST_F(DagStoreTest, PruneKeepsUnorderedRounds) {
  FillRound(0);
  FillRound(1);
  dag_.PruneBelow(2);  // Nothing ordered: nothing pruned.
  EXPECT_TRUE(dag_.Has(0, 0));
  EXPECT_TRUE(dag_.Has(1, 0));
}

TEST_F(DagStoreTest, PruneAlwaysRaisesFloorAndSetsStatus) {
  FillRound(0);
  FillRound(1);
  FillRound(2);
  for (NodeId src = 0; src < kNodes; ++src) {
    dag_.OrderHistory(2, src);
  }
  EXPECT_EQ(dag_.PrunedFloor(), 0u);
  dag_.PruneBelow(2);
  EXPECT_EQ(dag_.PrunedFloor(), 2u);
  EXPECT_EQ(dag_.StatusOf(0, 0), VertexStatus::kPruned);
  EXPECT_EQ(dag_.StatusOf(1, 3), VertexStatus::kPruned);
  EXPECT_EQ(dag_.StatusOf(2, 0), VertexStatus::kPresent);
  EXPECT_EQ(dag_.StatusOf(3, 0), VertexStatus::kUnknown);  // Above the floor.
  // The floor is monotone: a lower prune round never lowers it back.
  dag_.PruneBelow(1);
  EXPECT_EQ(dag_.PrunedFloor(), 2u);
}

TEST_F(DagStoreTest, HoleRoundBelowFloorStaysFetchable) {
  FillRound(0);
  // Round 1 incomplete: sources 0 and 1 only, nothing ordered there.
  InsertVertex(1, 0, {0, 1, 2, 3});
  InsertVertex(1, 1, {0, 1, 2, 3});
  for (NodeId src = 0; src < kNodes; ++src) {
    dag_.OrderHistory(0, src);
  }
  dag_.PruneBelow(2);
  // Round 0 (fully ordered) was dropped; round 1 survives as a hole.
  EXPECT_EQ(dag_.StatusOf(0, 0), VertexStatus::kPruned);
  EXPECT_EQ(dag_.StatusOf(1, 0), VertexStatus::kPresent);
  // Absent slots of a surviving hole round stay kUnknown — a fetched
  // straggler can still land there, so it must not read as pruned.
  EXPECT_EQ(dag_.StatusOf(1, 2), VertexStatus::kUnknown);
}

TEST_F(DagStoreTest, StragglerInsertsIntoHoleRoundAfterPrune) {
  FillRound(0);
  // Capture round-0 digests before they are pruned away.
  std::vector<Digest> parent_digests;
  for (NodeId src = 0; src < kNodes; ++src) {
    parent_digests.push_back(*dag_.DigestOf(0, src));
  }
  InsertVertex(1, 0, {0, 1, 2, 3});
  for (NodeId src = 0; src < kNodes; ++src) {
    dag_.OrderHistory(0, src);
  }
  dag_.PruneBelow(2);

  // A straggler for the hole round references only pruned parents.
  Vertex straggler;
  straggler.round = 1;
  straggler.source = 2;
  for (NodeId p = 0; p < kNodes; ++p) {
    straggler.strong_edges.push_back(StrongEdge{p, parent_digests[p]});
  }
  EXPECT_TRUE(dag_.ParentsPresent(straggler));  // Pruned counts as present.
  EXPECT_TRUE(dag_.Insert(straggler));
  EXPECT_EQ(dag_.StatusOf(1, 2), VertexStatus::kPresent);
}

TEST_F(DagStoreTest, RedeliveryIntoFullyPrunedRoundRejected) {
  FillRound(0);
  FillRound(1);
  for (NodeId src = 0; src < kNodes; ++src) {
    dag_.OrderHistory(1, src);
  }
  dag_.PruneBelow(2);
  ASSERT_EQ(dag_.StatusOf(0, 0), VertexStatus::kPruned);
  Vertex late;
  late.round = 0;
  late.source = 0;
  EXPECT_FALSE(dag_.Insert(late));  // Committed history: drop, don't re-admit.
}

TEST_F(DagStoreTest, ParentsPresentRejectsUnknownHoleSlot) {
  FillRound(0);
  InsertVertex(1, 0, {0, 1, 2, 3});
  for (NodeId src = 0; src < kNodes; ++src) {
    dag_.OrderHistory(0, src);
  }
  dag_.PruneBelow(2);
  // A round-2 vertex referencing the absent (1,1) slot: that parent is
  // kUnknown (hole round survives), so it is NOT present.
  Vertex v;
  v.round = 2;
  v.source = 0;
  v.strong_edges = {StrongEdge{0, *dag_.DigestOf(1, 0)}, StrongEdge{1, Digest()}};
  EXPECT_FALSE(dag_.ParentsPresent(v));
}

TEST_F(DagStoreTest, LookupFallsBackToPrunedHistoryHook) {
  FillRound(0);
  FillRound(1);
  Vertex archived = *dag_.Get(0, 1);
  for (NodeId src = 0; src < kNodes; ++src) {
    dag_.OrderHistory(0, src);  // Only round 0: round 1 survives the prune.
  }
  dag_.PruneBelow(2);

  // No hook installed: pruned slots are simply gone.
  EXPECT_FALSE(dag_.Lookup(0, 1).has_value());

  dag_.SetPrunedLookup([&](Round r, NodeId src) -> std::optional<Vertex> {
    if (r == 0 && src == 1) {
      return archived;
    }
    return std::nullopt;
  });
  bool from_history = false;
  auto got = dag_.Lookup(0, 1, &from_history);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(from_history);
  EXPECT_EQ(*got, archived);
  // Live vertices never consult the hook.
  from_history = true;
  EXPECT_TRUE(dag_.Lookup(1, 0, &from_history).has_value());
  EXPECT_FALSE(from_history);
  // A hook that declines leaves the slot unresolved.
  EXPECT_FALSE(dag_.Lookup(0, 2).has_value());
  EXPECT_FALSE(dag_.Lookup(5, 0).has_value());
}

TEST_F(DagStoreTest, PruneDropsWeakEdgeCandidatesWithTheRound) {
  FillRound(0);
  // Round 1 covers only {0,1,2}: (0,3) is an uncovered weak-edge candidate.
  for (NodeId src = 0; src < kNodes; ++src) {
    InsertVertex(1, src, {0, 1, 2});
  }
  ASSERT_EQ(dag_.SelectWeakEdges(2).size(), 1u);
  for (NodeId src = 0; src < kNodes; ++src) {
    dag_.OrderHistory(1, src);
  }
  dag_.OrderHistory(0, 3);  // The uncovered straggler too.
  dag_.PruneBelow(2);
  // A proposal must never weak-reference a body the store no longer holds.
  EXPECT_TRUE(dag_.SelectWeakEdges(3).empty());
}

}  // namespace
}  // namespace clandag
