// OrderedVerifyPool (common/work_pool.h): in-order delivery despite
// out-of-order completion, inline mode, verdict propagation, backpressure
// accounting, and a 30-seed randomized stress ("chaos") sweep.

#include "common/work_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace clandag {
namespace {

// FIFO executor standing in for TcpRuntime::Post: worker threads enqueue,
// one drainer thread runs the closures in order.
class FifoExecutor {
 public:
  FifoExecutor() : drainer_([this] { Drain(); }) {}
  ~FifoExecutor() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    drainer_.join();
  }

  void Post(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(fn));
    }
    cv_.notify_all();
  }

 private:
  void Drain() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty() && stopping_) {
        return;
      }
      auto fn = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      fn();
      lock.lock();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::thread drainer_;
};

TEST(OrderedVerifyPool, InlineModeRunsSynchronously) {
  OrderedVerifyPool pool({.num_workers = 0}, nullptr);
  int order = 0;
  int verified_at = -1;
  int done_at = -1;
  pool.Submit(
      [&] {
        verified_at = order++;
        return true;
      },
      [&](bool ok) {
        EXPECT_TRUE(ok);
        done_at = order++;
      });
  EXPECT_EQ(verified_at, 0);
  EXPECT_EQ(done_at, 1);
}

TEST(OrderedVerifyPool, VerdictReachesDone) {
  FifoExecutor exec;
  OrderedVerifyPool pool({.num_workers = 2},
                         [&exec](std::function<void()> fn) { exec.Post(std::move(fn)); });
  std::mutex mu;
  std::condition_variable cv;
  std::vector<bool> verdicts;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([i] { return i % 3 == 0; },
                [&, i](bool ok) {
                  std::lock_guard<std::mutex> lock(mu);
                  EXPECT_EQ(ok, i % 3 == 0);
                  verdicts.push_back(ok);
                  cv.notify_all();
                });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                          [&] { return verdicts.size() == 10; }));
}

// The core contract: done callbacks run in submission order even when slow
// early jobs finish after fast later ones.
TEST(OrderedVerifyPool, OutOfOrderCompletionDeliversInOrder) {
  FifoExecutor exec;
  OrderedVerifyPool pool({.num_workers = 4, .max_batch = 1},
                         [&exec](std::function<void()> fn) { exec.Post(std::move(fn)); });
  constexpr int kJobs = 64;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> delivered;
  for (int i = 0; i < kJobs; ++i) {
    pool.Submit(
        [i] {
          // Early jobs are the slowest: forces completion order to invert
          // submission order unless the pool re-orders on release.
          std::this_thread::sleep_for(std::chrono::microseconds((kJobs - i) * 50));
          return true;
        },
        [&, i](bool) {
          std::lock_guard<std::mutex> lock(mu);
          delivered.push_back(i);
          cv.notify_all();
        });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return delivered.size() == kJobs; }));
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_EQ(delivered[static_cast<size_t>(i)], i) << "delivery out of order";
  }
}

// Chaos sweep: 30 fixed seeds of randomized verify latencies and batch
// shapes; every seed must deliver every job exactly once, in order.
TEST(OrderedVerifyPool, ThirtySeedRandomizedSweepKeepsOrder) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    uint64_t rng = seed * 0x9e3779b97f4a7c15ULL;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    FifoExecutor exec;
    OrderedVerifyPool pool(
        {.num_workers = static_cast<uint32_t>(1 + next() % 4),
         .max_batch = static_cast<size_t>(1 + next() % 8)},
        [&exec](std::function<void()> fn) { exec.Post(std::move(fn)); });
    const int jobs = static_cast<int>(20 + next() % 50);
    std::mutex mu;
    std::condition_variable cv;
    std::vector<int> delivered;
    for (int i = 0; i < jobs; ++i) {
      const auto delay = std::chrono::microseconds(next() % 300);
      pool.Submit(
          [delay] {
            std::this_thread::sleep_for(delay);
            return true;
          },
          [&, i](bool) {
            std::lock_guard<std::mutex> lock(mu);
            delivered.push_back(i);
            cv.notify_all();
          });
    }
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return static_cast<int>(delivered.size()) == jobs; }))
        << "seed " << seed;
    for (int i = 0; i < jobs; ++i) {
      ASSERT_EQ(delivered[static_cast<size_t>(i)], i) << "seed " << seed;
    }
  }
}

TEST(OrderedVerifyPool, StatsCountSubmissions) {
  FifoExecutor exec;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  {
    OrderedVerifyPool pool({.num_workers = 1},
                           [&exec](std::function<void()> fn) { exec.Post(std::move(fn)); });
    for (int i = 0; i < 5; ++i) {
      pool.Submit([] { return true; },
                  [&](bool) {
                    std::lock_guard<std::mutex> lock(mu);
                    ++done;
                    cv.notify_all();
                  });
    }
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10), [&] { return done == 5; }));
    const OrderedVerifyPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.submitted, 5u);
    EXPECT_GE(stats.delivered_batches, 1u);
    EXPECT_LE(stats.delivered_batches, 5u);
  }
}

}  // namespace
}  // namespace clandag
