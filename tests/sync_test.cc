// State-sync & crash-recovery subsystem tests.
//
// Unit level: WAL framing and random access, recovery record codecs, the
// WalVertexStore replay/index, VertexFetcher request/verify/backoff logic,
// FetchResponder ancestry amplification and WAL-backed history serving.
//
// Integration level (deterministic simulation): a node whose inbound vertex
// traffic is dropped catches up through the fetch protocol to the same
// committed prefix as its peers; a node killed mid-run restarts from its
// WAL, replays the committed prefix, fetches the gap, and resumes with an
// identical ordered output. Both repeated with Byzantine block-withholding
// peers in the mix.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/app_node.h"
#include "core/byzantine.h"
#include "sim/network.h"
#include "sync/recovery.h"
#include "sync/sync_wire.h"
#include "sync/fetch_responder.h"
#include "sync/vertex_fetcher.h"
#include "sync/wal.h"
#include "sync/wal_vertex_store.h"

namespace clandag {
namespace {

// ---- WAL ----

class WalTest : public ::testing::Test {
 protected:
  WalTest() {
    path_ = ::testing::TempDir() + "/clandag_wal_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  ~WalTest() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(WalTest, AppendAndReplay) {
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open());
    EXPECT_TRUE(wal.Append(ToBytes("record one")));
    EXPECT_TRUE(wal.Append(ToBytes("record two")));
    EXPECT_TRUE(wal.Sync());
  }
  std::vector<std::string> records;
  int64_t count = Wal::Replay(path_, [&](const Bytes& r) { records.push_back(ToString(r)); });
  EXPECT_EQ(count, 2);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "record one");
  EXPECT_EQ(records[1], "record two");
}

TEST_F(WalTest, ReplayMissingFileFails) {
  EXPECT_EQ(Wal::Replay(path_ + ".nope", [](const Bytes&) {}), -1);
}

TEST_F(WalTest, TornTailTolerated) {
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open());
    wal.Append(ToBytes("intact"));
    wal.Sync();
  }
  // Append garbage simulating a torn write.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  uint8_t torn[5] = {0xff, 0x01, 0x02, 0x03, 0x04};
  std::fwrite(torn, 1, sizeof(torn), f);
  std::fclose(f);

  std::vector<std::string> records;
  int64_t count = Wal::Replay(path_, [&](const Bytes& r) { records.push_back(ToString(r)); });
  EXPECT_EQ(count, 1);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "intact");
}

TEST_F(WalTest, CorruptChecksumStopsReplay) {
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open());
    wal.Append(ToBytes("aaaa"));
    wal.Append(ToBytes("bbbb"));
    wal.Sync();
  }
  // Flip a payload byte of the first record (offset 8 = after its header).
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 8, SEEK_SET);
  std::fputc('X', f);
  std::fclose(f);
  int64_t count = Wal::Replay(path_, [](const Bytes&) {});
  EXPECT_EQ(count, 0);  // First record corrupt: replay stops immediately.
}

// A tail sheared mid-frame (power cut truncating the final record, not just
// trailing garbage) must be detected, reported, and then physically cut so
// records appended after recovery stay reachable.
TEST_F(WalTest, ShearedTailTruncatedThenAppendsStayReachable) {
  int64_t third_offset = 0;
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open());
    wal.AppendIndexed(ToBytes("one"));
    wal.AppendIndexed(ToBytes("two"));
    third_offset = wal.AppendIndexed(ToBytes("three"));
    wal.Sync();
  }
  // Shear: keep the third record's header plus half its payload.
  ASSERT_TRUE(Wal::TruncateTo(path_, static_cast<uint64_t>(third_offset) + 8 + 2));

  WalReplayStatus status = Wal::ReplayFramesChecked(path_, [](uint64_t, const Bytes&) {});
  EXPECT_EQ(status.records, 2);
  EXPECT_TRUE(status.torn_tail);
  EXPECT_EQ(status.valid_bytes, static_cast<uint64_t>(third_offset));

  ASSERT_TRUE(Wal::TruncateTo(path_, status.valid_bytes));
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open());
    wal.Append(ToBytes("four"));
    wal.Sync();
  }
  std::vector<std::string> records;
  EXPECT_EQ(Wal::Replay(path_, [&](const Bytes& r) { records.push_back(ToString(r)); }), 3);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2], "four");
}

TEST_F(WalTest, EmptyRecordRoundTrips) {
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open());
    wal.Append(Bytes{});
    wal.Sync();
  }
  int64_t count = Wal::Replay(path_, [](const Bytes& r) { EXPECT_TRUE(r.empty()); });
  EXPECT_EQ(count, 1);
}

TEST_F(WalTest, AppendIndexedReportsFrameOffsets) {
  Wal wal(path_);
  ASSERT_TRUE(wal.Open());
  int64_t off1 = wal.AppendIndexed(ToBytes("first"));
  int64_t off2 = wal.AppendIndexed(ToBytes("second record"));
  int64_t off3 = wal.AppendIndexed(ToBytes("third"));
  ASSERT_TRUE(wal.Flush());
  EXPECT_EQ(off1, 0);
  // Frame = 8-byte header + payload.
  EXPECT_EQ(off2, off1 + 8 + 5);
  EXPECT_EQ(off3, off2 + 8 + 13);
  EXPECT_EQ(wal.SizeBytes(), static_cast<uint64_t>(off3) + 8 + 5);

  auto second = Wal::ReadRecordAt(path_, static_cast<uint64_t>(off2));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(ToString(*second), "second record");
}

TEST_F(WalTest, ReadRecordAtBogusOffsetFails) {
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open());
    wal.Append(ToBytes("only"));
    wal.Sync();
  }
  EXPECT_FALSE(Wal::ReadRecordAt(path_, 3).has_value());     // Mid-frame.
  EXPECT_FALSE(Wal::ReadRecordAt(path_, 1000).has_value());  // Past EOF.
}

TEST_F(WalTest, ReplayFramesMatchesAppendIndexed) {
  std::vector<int64_t> append_offsets;
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open());
    append_offsets.push_back(wal.AppendIndexed(ToBytes("a")));
    append_offsets.push_back(wal.AppendIndexed(ToBytes("bb")));
    append_offsets.push_back(wal.AppendIndexed(ToBytes("ccc")));
    wal.Sync();
  }
  std::vector<uint64_t> replay_offsets;
  int64_t count = Wal::ReplayFrames(
      path_, [&](uint64_t offset, const Bytes&) { replay_offsets.push_back(offset); });
  EXPECT_EQ(count, 3);
  ASSERT_EQ(replay_offsets.size(), append_offsets.size());
  for (size_t i = 0; i < append_offsets.size(); ++i) {
    EXPECT_EQ(static_cast<int64_t>(replay_offsets[i]), append_offsets[i]);
  }
}

TEST_F(WalTest, ReopenAppendsAfterExistingRecords) {
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open());
    wal.Append(ToBytes("one"));
    wal.Sync();
  }
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open());
    wal.Append(ToBytes("two"));
    wal.Sync();
  }
  std::vector<std::string> records;
  EXPECT_EQ(Wal::Replay(path_, [&](const Bytes& r) { records.push_back(ToString(r)); }), 2);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], "two");
}

// ---- Recovery record codecs ----

Vertex MakeVertex(Round round, NodeId source) {
  Vertex v;
  v.round = round;
  v.source = source;
  return v;
}

TEST(RecoveryRecord, VertexRecordRoundTrips) {
  Vertex v = MakeVertex(9, 2);
  v.block_digest = Digest::Of(ToBytes("blk"));
  v.block_tx_count = 40;
  v.strong_edges = {StrongEdge{0, Digest::Of(ToBytes("p"))}};
  auto rec = DecodeWalRecord(EncodeVertexRecord(v));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->type, WalRecordType::kOrderedVertex);
  EXPECT_EQ(rec->vertex, v);
}

TEST(RecoveryRecord, AnchorAndProposalRecordsRoundTrip) {
  auto anchor = DecodeWalRecord(EncodeAnchorRecord(17));
  ASSERT_TRUE(anchor.has_value());
  EXPECT_EQ(anchor->type, WalRecordType::kAnchor);
  EXPECT_EQ(anchor->round, 17u);

  auto proposal = DecodeWalRecord(EncodeProposalRecord(23));
  ASSERT_TRUE(proposal.has_value());
  EXPECT_EQ(proposal->type, WalRecordType::kProposal);
  EXPECT_EQ(proposal->round, 23u);
}

TEST(RecoveryRecord, MalformedRecordsRejected) {
  EXPECT_FALSE(DecodeWalRecord(Bytes{}).has_value());
  EXPECT_FALSE(DecodeWalRecord(Bytes{0x7f}).has_value());  // Unknown type tag.
  Bytes truncated = EncodeAnchorRecord(5);
  truncated.pop_back();
  EXPECT_FALSE(DecodeWalRecord(truncated).has_value());
  Bytes trailing = EncodeProposalRecord(5);
  trailing.push_back(0xcd);
  EXPECT_FALSE(DecodeWalRecord(trailing).has_value());
}

TEST(RecoveryRecord, SnapshotMarkRecordRoundTrips) {
  auto mark = DecodeWalRecord(EncodeSnapshotMarkRecord(7, 1234, 88));
  ASSERT_TRUE(mark.has_value());
  EXPECT_EQ(mark->type, WalRecordType::kSnapshotMark);
  EXPECT_EQ(mark->seq, 7u);
  EXPECT_EQ(mark->order_count, 1234u);
  EXPECT_EQ(mark->round, 88u);

  Bytes truncated = EncodeSnapshotMarkRecord(7, 1234, 88);
  truncated.pop_back();
  EXPECT_FALSE(DecodeWalRecord(truncated).has_value());
}

// ---- Snapshot wire codecs ----

TEST(SnapshotWire, OfferRoundTripsAndRejectsMalformed) {
  SnapshotOfferMsg offer;
  offer.seq = 5;
  offer.last_committed = 64;
  offer.order_count = 300;
  offer.total_bytes = 70000;
  offer.chunk_size = 65536;
  offer.total_checksum = 0x1234abcd;
  auto decoded = SnapshotOfferMsg::Decode(offer.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, offer.seq);
  EXPECT_EQ(decoded->last_committed, offer.last_committed);
  EXPECT_EQ(decoded->order_count, offer.order_count);
  EXPECT_EQ(decoded->total_bytes, offer.total_bytes);
  EXPECT_EQ(decoded->chunk_size, offer.chunk_size);
  EXPECT_EQ(decoded->total_checksum, offer.total_checksum);

  Bytes truncated = offer.Encode();
  truncated.pop_back();
  EXPECT_FALSE(SnapshotOfferMsg::Decode(truncated).has_value());
  Bytes trailing = offer.Encode();
  trailing.push_back(0x00);
  EXPECT_FALSE(SnapshotOfferMsg::Decode(trailing).has_value());
}

TEST(SnapshotWire, ChunkRequestRoundTripsAndRejectsMalformed) {
  SnapshotChunkRequestMsg req;
  req.seq = 5;
  req.chunk_index = 11;
  auto decoded = SnapshotChunkRequestMsg::Decode(req.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 5u);
  EXPECT_EQ(decoded->chunk_index, 11u);

  Bytes truncated = req.Encode();
  truncated.pop_back();
  EXPECT_FALSE(SnapshotChunkRequestMsg::Decode(truncated).has_value());
  EXPECT_FALSE(SnapshotChunkRequestMsg::Decode(Bytes{}).has_value());
}

TEST(SnapshotWire, ChunkRoundTripsAndRejectsMalformed) {
  SnapshotChunkMsg chunk;
  chunk.seq = 5;
  chunk.chunk_index = 2;
  chunk.chunk_count = 4;
  chunk.data = ToBytes("the chunk payload");
  chunk.checksum = WalChecksum(chunk.data.data(), chunk.data.size());
  auto decoded = SnapshotChunkMsg::Decode(chunk.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 5u);
  EXPECT_EQ(decoded->chunk_index, 2u);
  EXPECT_EQ(decoded->chunk_count, 4u);
  EXPECT_EQ(decoded->checksum, chunk.checksum);
  EXPECT_EQ(decoded->data, chunk.data);

  Bytes truncated = chunk.Encode();
  truncated.pop_back();
  EXPECT_FALSE(SnapshotChunkMsg::Decode(truncated).has_value());
  Bytes trailing = chunk.Encode();
  trailing.push_back(0xee);
  EXPECT_FALSE(SnapshotChunkMsg::Decode(trailing).has_value());
}

// ---- WalVertexStore ----

class WalVertexStoreTest : public ::testing::Test {
 protected:
  WalVertexStoreTest() {
    path_ = ::testing::TempDir() + "/clandag_wvs_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  ~WalVertexStoreTest() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(WalVertexStoreTest, LoadFreshLogIsEmpty) {
  WalVertexStore store(path_);
  ASSERT_TRUE(store.Load());
  EXPECT_FALSE(store.recovery().HasData());
  EXPECT_EQ(store.IndexedCount(), 0u);
}

TEST_F(WalVertexStoreTest, ReplaySplitsPrefixAndTrailing) {
  {
    WalVertexStore store(path_);
    ASSERT_TRUE(store.Load());
    store.AppendProposal(0);
    store.AppendOrdered(MakeVertex(0, 0));
    store.AppendOrdered(MakeVertex(0, 1));
    store.AppendOrdered(MakeVertex(1, 2));
    store.AppendAnchor(1);  // Commit barrier: the three above are the prefix.
    store.AppendOrdered(MakeVertex(1, 3));
    store.AppendOrdered(MakeVertex(2, 0));  // Trailing: no barrier after them.
    store.AppendProposal(3);
  }
  WalVertexStore store(path_);
  ASSERT_TRUE(store.Load());
  const RecoveryState& state = store.recovery();
  EXPECT_TRUE(state.HasData());
  EXPECT_EQ(state.records, 8u);
  ASSERT_EQ(state.ordered.size(), 3u);
  EXPECT_EQ(state.ordered[0], MakeVertex(0, 0));
  EXPECT_EQ(state.ordered[2], MakeVertex(1, 2));
  ASSERT_EQ(state.trailing.size(), 2u);
  EXPECT_EQ(state.trailing[0], MakeVertex(1, 3));
  EXPECT_EQ(state.last_committed, 1);
  EXPECT_EQ(state.propose_floor, 4u);  // Highest proposal marker + 1.
  EXPECT_EQ(store.IndexedCount(), 5u);
}

TEST_F(WalVertexStoreTest, LookupReadsVerticesBack) {
  Vertex v = MakeVertex(4, 1);
  v.block_digest = Digest::Of(ToBytes("payload"));
  v.strong_edges = {StrongEdge{2, Digest::Of(ToBytes("e"))}};
  {
    WalVertexStore store(path_);
    ASSERT_TRUE(store.Load());
    store.AppendOrdered(v);
    store.AppendAnchor(4);
  }
  WalVertexStore store(path_);
  ASSERT_TRUE(store.Load());
  auto got = store.Lookup(4, 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, v);
  EXPECT_FALSE(store.Lookup(4, 2).has_value());
  EXPECT_FALSE(store.Lookup(5, 1).has_value());
}

TEST_F(WalVertexStoreTest, DuplicateOrderedAppendsDeduplicated) {
  {
    WalVertexStore store(path_);
    ASSERT_TRUE(store.Load());
    store.AppendOrdered(MakeVertex(2, 2));
    store.AppendOrdered(MakeVertex(2, 2));  // Re-ordered after crash-during-catchup.
    store.AppendAnchor(2);
  }
  WalVertexStore store(path_);
  ASSERT_TRUE(store.Load());
  EXPECT_EQ(store.recovery().records, 2u);  // Second append was skipped.
  EXPECT_EQ(store.recovery().ordered.size(), 1u);
  EXPECT_EQ(store.IndexedCount(), 1u);
}

TEST_F(WalVertexStoreTest, NoAnchorMeansEverythingTrailing) {
  {
    WalVertexStore store(path_);
    ASSERT_TRUE(store.Load());
    store.AppendOrdered(MakeVertex(0, 0));
    store.AppendOrdered(MakeVertex(0, 1));
  }
  WalVertexStore store(path_);
  ASSERT_TRUE(store.Load());
  EXPECT_TRUE(store.recovery().ordered.empty());
  EXPECT_EQ(store.recovery().trailing.size(), 2u);
  EXPECT_EQ(store.recovery().last_committed, -1);
}

TEST_F(WalVertexStoreTest, CorruptRecordPayloadSkippedNotFatal) {
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open());
    wal.Append(ToBytes("not a wal record"));  // Valid frame, bogus schema.
    wal.Append(EncodeAnchorRecord(3));
    wal.Sync();
  }
  WalVertexStore store(path_);
  ASSERT_TRUE(store.Load());
  // The undecodable record is skipped; the anchor behind it still applies.
  EXPECT_EQ(store.recovery().last_committed, 3);
}

// ---- Fetcher / responder unit tests ----

// Single-node deterministic runtime: timers fire on demand, sends are
// captured for inspection.
class FakeRuntime : public Runtime {
 public:
  FakeRuntime(NodeId id, uint32_t n) : id_(id), n_(n) {}

  using Runtime::Send;
  NodeId id() const override { return id_; }
  uint32_t num_nodes() const override { return n_; }
  TimeMicros Now() const override { return now_; }
  void Schedule(TimeMicros delay, std::function<void()> fn) override {
    timers_.push_back(Timer{now_ + delay, seq_++, std::move(fn)});
  }
  void Send(NodeId to, MsgType type, std::shared_ptr<const Bytes> payload,
            size_t) override {
    sent.push_back(SentMsg{to, type, *payload});
  }

  // Advances the clock to `t`, firing due timers in (time, sequence) order.
  void AdvanceTo(TimeMicros t) {
    for (;;) {
      size_t best = timers_.size();
      for (size_t i = 0; i < timers_.size(); ++i) {
        if (timers_[i].at > t) {
          continue;
        }
        if (best == timers_.size() || timers_[i].at < timers_[best].at ||
            (timers_[i].at == timers_[best].at && timers_[i].seq < timers_[best].seq)) {
          best = i;
        }
      }
      if (best == timers_.size()) {
        break;
      }
      Timer timer = std::move(timers_[best]);
      timers_.erase(timers_.begin() + static_cast<long>(best));
      now_ = std::max(now_, timer.at);
      timer.fn();
    }
    now_ = std::max(now_, t);
  }

  struct SentMsg {
    NodeId to;
    MsgType type;
    Bytes payload;
  };
  std::vector<SentMsg> sent;

 private:
  struct Timer {
    TimeMicros at;
    uint64_t seq;
    std::function<void()> fn;
  };
  NodeId id_;
  uint32_t n_;
  TimeMicros now_ = 0;
  uint64_t seq_ = 0;
  std::vector<Timer> timers_;
};

class VertexFetcherTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kNodes = 4;

  VertexFetcherTest() : runtime_(3, kNodes), dag_(kNodes) {}

  // A child one round above `parent` referencing it through a strong edge.
  static Vertex ChildOf(const Vertex& parent, NodeId child_source) {
    Vertex child = MakeVertex(parent.round + 1, child_source);
    child.strong_edges = {StrongEdge{parent.source, parent.ComputeDigest()}};
    return child;
  }

  FakeRuntime runtime_;
  DagStore dag_;
};

TEST_F(VertexFetcherTest, RequestsMissingParentAfterGracePeriod) {
  FetcherConfig config;
  config.initial_delay = Millis(100);
  VertexFetcher fetcher(runtime_, dag_, config);
  fetcher.SetLowWatermark([] { return Round{7}; });

  Vertex parent = MakeVertex(1, 0);
  fetcher.AddBlocked(ChildOf(parent, 1), Digest::Of(ToBytes("child")));
  EXPECT_EQ(fetcher.BlockedCount(), 1u);
  EXPECT_EQ(fetcher.MissingCount(), 1u);

  runtime_.AdvanceTo(Millis(99));
  EXPECT_TRUE(runtime_.sent.empty());  // Grace period: broadcast may still win.

  runtime_.AdvanceTo(Millis(101));
  ASSERT_EQ(runtime_.sent.size(), 1u);
  EXPECT_EQ(runtime_.sent[0].type, kSyncFetchRequest);
  EXPECT_NE(runtime_.sent[0].to, runtime_.id());  // Never asks itself.
  auto req = FetchRequestMsg::Decode(runtime_.sent[0].payload);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->low_watermark, 7u);
  ASSERT_EQ(req->wants.size(), 1u);
  EXPECT_EQ(req->wants[0], (VertexRef{1, 0}));
  EXPECT_EQ(fetcher.stats().requests_sent, 1u);
}

TEST_F(VertexFetcherTest, RetriesRotateOverPeers) {
  FetcherConfig config;
  config.initial_delay = Millis(10);
  config.retry_base = Millis(10);
  config.retry_cap = Millis(10);
  VertexFetcher fetcher(runtime_, dag_, config);

  fetcher.AddBlocked(ChildOf(MakeVertex(1, 0), 1), Digest::Of(ToBytes("c")));
  runtime_.AdvanceTo(Millis(100));
  ASSERT_GE(runtime_.sent.size(), 3u);
  std::set<NodeId> targets;
  for (const auto& msg : runtime_.sent) {
    EXPECT_NE(msg.to, runtime_.id());
    targets.insert(msg.to);
  }
  EXPECT_GE(targets.size(), 2u);  // Rotation hits distinct peers.
  EXPECT_GE(fetcher.stats().retries, 2u);
}

TEST_F(VertexFetcherTest, BackoffGrowsExponentiallyAndCaps) {
  FetcherConfig config;
  config.retry_base = Millis(100);
  config.retry_cap = Millis(1600);
  config.retry_jitter = 0.0;  // Exact schedule.
  VertexFetcher fetcher(runtime_, dag_, config);
  EXPECT_EQ(fetcher.NextBackoff(0), Millis(100));
  EXPECT_EQ(fetcher.NextBackoff(1), Millis(200));
  EXPECT_EQ(fetcher.NextBackoff(2), Millis(400));
  EXPECT_EQ(fetcher.NextBackoff(3), Millis(800));
  EXPECT_EQ(fetcher.NextBackoff(4), Millis(1600));
  EXPECT_EQ(fetcher.NextBackoff(5), Millis(1600));   // Capped.
  EXPECT_EQ(fetcher.NextBackoff(60), Millis(1600));  // Shift clamped: no overflow.
}

TEST_F(VertexFetcherTest, BackoffJitterStaysWithinBand) {
  FetcherConfig config;
  config.retry_base = Millis(100);
  config.retry_jitter = 0.25;
  config.seed = 99;
  VertexFetcher fetcher(runtime_, dag_, config);
  TimeMicros first = 0;
  bool varied = false;
  for (int i = 0; i < 64; ++i) {
    const TimeMicros b = fetcher.NextBackoff(1);  // Nominal 200ms.
    EXPECT_GE(b, Millis(150));
    EXPECT_LE(b, Millis(250));
    if (i == 0) {
      first = b;
    } else if (b != first) {
      varied = true;
    }
  }
  EXPECT_TRUE(varied);  // The band is actually explored, not a constant.
}

TEST_F(VertexFetcherTest, BackoffScheduleIsSeedDeterministic) {
  FetcherConfig config;
  config.retry_jitter = 0.3;
  config.seed = 1234;
  VertexFetcher a(runtime_, dag_, config);
  VertexFetcher b(runtime_, dag_, config);
  std::vector<TimeMicros> seq_a;
  std::vector<TimeMicros> seq_b;
  for (uint32_t i = 0; i < 20; ++i) {
    seq_a.push_back(a.NextBackoff(i % 6));
    seq_b.push_back(b.NextBackoff(i % 6));
  }
  // Same (seed, node id) -> the identical schedule, replayable in tests.
  EXPECT_EQ(seq_a, seq_b);

  config.seed = 4321;
  VertexFetcher c(runtime_, dag_, config);
  std::vector<TimeMicros> seq_c;
  for (uint32_t i = 0; i < 20; ++i) {
    seq_c.push_back(c.NextBackoff(i % 6));
  }
  EXPECT_NE(seq_a, seq_c);  // Different seeds decorrelate the jitter.
}

TEST_F(VertexFetcherTest, VerifiedResponseIsDeliveredAndUnblocksChild) {
  FetcherConfig config;
  config.initial_delay = Millis(10);
  VertexFetcher fetcher(runtime_, dag_, config);

  std::vector<std::pair<Vertex, Digest>> delivered;
  fetcher.SetDeliver([&](Vertex v, const Digest& d) {
    delivered.push_back({v, d});
    EXPECT_TRUE(dag_.Insert(std::move(v)));  // What consensus admission does.
  });

  Vertex parent = MakeVertex(1, 0);
  Vertex child = ChildOf(parent, 1);
  const Digest child_digest = child.ComputeDigest();
  fetcher.AddBlocked(child, child_digest);

  FetchResponseMsg resp;
  resp.vertices.push_back(parent);
  fetcher.OnResponse(2, resp.Encode());

  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].first, parent);
  EXPECT_EQ(delivered[0].second, parent.ComputeDigest());
  EXPECT_EQ(fetcher.stats().vertices_fetched, 1u);
  EXPECT_EQ(fetcher.MissingCount(), 0u);

  auto admissible = fetcher.TakeAdmissible();
  ASSERT_EQ(admissible.size(), 1u);
  EXPECT_EQ(admissible[0].first, child);
  EXPECT_EQ(admissible[0].second, child_digest);
  EXPECT_EQ(fetcher.BlockedCount(), 0u);
}

TEST_F(VertexFetcherTest, WrongBodyFailsDigestVerification) {
  VertexFetcher fetcher(runtime_, dag_, FetcherConfig{});
  bool delivered = false;
  fetcher.SetDeliver([&](Vertex, const Digest&) { delivered = true; });

  Vertex parent = MakeVertex(1, 0);
  fetcher.AddBlocked(ChildOf(parent, 1), Digest::Of(ToBytes("c")));

  Vertex forged = parent;
  forged.block_tx_count = 999;  // Any bit flip: the edge digest pins the body.
  FetchResponseMsg resp;
  resp.vertices.push_back(forged);
  fetcher.OnResponse(2, resp.Encode());

  EXPECT_FALSE(delivered);
  EXPECT_EQ(fetcher.stats().digest_mismatches, 1u);
  EXPECT_EQ(fetcher.MissingCount(), 1u);  // Entry stays; backoff keeps going.
}

TEST_F(VertexFetcherTest, UnsolicitedResponseVerticesIgnored) {
  VertexFetcher fetcher(runtime_, dag_, FetcherConfig{});
  bool delivered = false;
  fetcher.SetDeliver([&](Vertex, const Digest&) { delivered = true; });
  FetchResponseMsg resp;
  resp.vertices.push_back(MakeVertex(5, 2));
  fetcher.OnResponse(1, resp.Encode());
  EXPECT_FALSE(delivered);
  EXPECT_EQ(fetcher.stats().responses_received, 1u);
  EXPECT_EQ(fetcher.stats().vertices_fetched, 0u);
}

TEST_F(VertexFetcherTest, FetchedParentRegistersItsOwnMissingParents) {
  FetcherConfig config;
  config.initial_delay = Millis(10);
  VertexFetcher fetcher(runtime_, dag_, config);
  // Chain: grandparent (1,0) <- parent (2,0) <- child (3,1). Nothing stored.
  Vertex grandparent = MakeVertex(1, 0);
  Vertex parent = ChildOf(grandparent, 0);
  Vertex child = ChildOf(parent, 1);
  fetcher.SetDeliver([&](Vertex v, const Digest& d) { fetcher.AddBlocked(std::move(v), d); });

  fetcher.AddBlocked(child, child.ComputeDigest());
  EXPECT_EQ(fetcher.MissingCount(), 1u);  // (2,0).

  FetchResponseMsg resp;
  resp.vertices.push_back(parent);
  fetcher.OnResponse(2, resp.Encode());
  // The fetched parent is itself blocked and the walk now wants (1,0).
  EXPECT_EQ(fetcher.BlockedCount(), 2u);
  EXPECT_EQ(fetcher.MissingCount(), 1u);
  EXPECT_EQ(fetcher.OldestPinnedRound().value_or(999), 1u);
}

TEST_F(VertexFetcherTest, AbandonsAfterMaxAttemptsAndDropsChildren) {
  FetcherConfig config;
  config.initial_delay = Millis(10);
  config.retry_base = Millis(10);
  config.retry_cap = Millis(10);
  config.max_attempts = 2;
  VertexFetcher fetcher(runtime_, dag_, config);

  fetcher.AddBlocked(ChildOf(MakeVertex(1, 0), 1), Digest::Of(ToBytes("c")));
  runtime_.AdvanceTo(Seconds(1));

  EXPECT_EQ(fetcher.stats().requests_sent, 2u);
  EXPECT_EQ(fetcher.stats().fetches_abandoned, 1u);
  EXPECT_EQ(fetcher.MissingCount(), 0u);
  EXPECT_EQ(fetcher.BlockedCount(), 0u);  // Unadmittable child dropped too.
}

TEST_F(VertexFetcherTest, ArrivalThroughBroadcastCancelsFetch) {
  FetcherConfig config;
  config.initial_delay = Millis(100);
  VertexFetcher fetcher(runtime_, dag_, config);

  Vertex parent = MakeVertex(1, 0);
  fetcher.AddBlocked(ChildOf(parent, 1), Digest::Of(ToBytes("c")));
  ASSERT_TRUE(dag_.Insert(parent));  // Normal broadcast wins during the grace period.

  runtime_.AdvanceTo(Seconds(1));
  EXPECT_TRUE(runtime_.sent.empty());
  EXPECT_EQ(fetcher.MissingCount(), 0u);
  EXPECT_EQ(fetcher.TakeAdmissible().size(), 1u);
}

TEST_F(VertexFetcherTest, DisabledFetcherBuffersWithoutRequesting) {
  FetcherConfig config;
  config.enabled = false;
  VertexFetcher fetcher(runtime_, dag_, config);

  Vertex parent = MakeVertex(1, 0);
  fetcher.AddBlocked(ChildOf(parent, 1), Digest::Of(ToBytes("c")));
  runtime_.AdvanceTo(Seconds(30));
  EXPECT_TRUE(runtime_.sent.empty());  // Pure missing-parent buffer.

  ASSERT_TRUE(dag_.Insert(parent));
  EXPECT_EQ(fetcher.TakeAdmissible().size(), 1u);
}

TEST_F(VertexFetcherTest, PinsGcFloorAndPrunes) {
  VertexFetcher fetcher(runtime_, dag_, FetcherConfig{});
  EXPECT_FALSE(fetcher.OldestPinnedRound().has_value());

  fetcher.AddBlocked(ChildOf(MakeVertex(4, 0), 1), Digest::Of(ToBytes("c")));
  ASSERT_TRUE(fetcher.OldestPinnedRound().has_value());
  EXPECT_EQ(*fetcher.OldestPinnedRound(), 4u);  // The missing parent's round.

  fetcher.PruneBelow(10);
  EXPECT_EQ(fetcher.BlockedCount(), 0u);
  EXPECT_EQ(fetcher.MissingCount(), 0u);
  EXPECT_FALSE(fetcher.OldestPinnedRound().has_value());
}

// Fills rounds [0, upto] of `dag` where every vertex references all parents.
void FillDag(DagStore& dag, uint32_t nodes, Round upto) {
  for (Round r = 0; r <= upto; ++r) {
    for (NodeId src = 0; src < nodes; ++src) {
      Vertex v = MakeVertex(r, src);
      if (r > 0) {
        for (NodeId p = 0; p < nodes; ++p) {
          v.strong_edges.push_back(StrongEdge{p, *dag.DigestOf(r - 1, p)});
        }
      }
      ASSERT_TRUE(dag.Insert(std::move(v)));
    }
  }
}

class FetchResponderTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kNodes = 4;

  FetchResponderTest() : runtime_(0, kNodes), dag_(kNodes) {}

  FakeRuntime runtime_;
  DagStore dag_;
};

TEST_F(FetchResponderTest, ServesWantWithAmplifiedAncestry) {
  FillDag(dag_, kNodes, 2);
  FetchResponder responder(runtime_, dag_, ResponderConfig{});

  FetchRequestMsg req;
  req.low_watermark = 0;
  req.wants = {VertexRef{2, 0}};
  responder.OnRequest(3, req.Encode());

  ASSERT_EQ(runtime_.sent.size(), 1u);
  EXPECT_EQ(runtime_.sent[0].to, 3u);
  EXPECT_EQ(runtime_.sent[0].type, kSyncFetchResponse);
  auto resp = FetchResponseMsg::Decode(runtime_.sent[0].payload);
  ASSERT_TRUE(resp.has_value());
  // The want plus its full ancestry: 1 + 4 (round 1) + 4 (round 0).
  EXPECT_EQ(resp->vertices.size(), 9u);
  EXPECT_EQ(responder.stats().requests_served, 1u);
  EXPECT_EQ(responder.stats().vertices_served, 9u);
  EXPECT_EQ(responder.stats().wal_vertices_served, 0u);
}

TEST_F(FetchResponderTest, WatermarkBoundsTheAncestorWalk) {
  FillDag(dag_, kNodes, 2);
  FetchResponder responder(runtime_, dag_, ResponderConfig{});

  FetchRequestMsg req;
  req.low_watermark = 2;  // Requester already holds rounds < 2.
  req.wants = {VertexRef{2, 0}};
  responder.OnRequest(3, req.Encode());

  ASSERT_EQ(runtime_.sent.size(), 1u);
  auto resp = FetchResponseMsg::Decode(runtime_.sent[0].payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->vertices.size(), 1u);
}

TEST_F(FetchResponderTest, ResponseBudgetCapsAmplification) {
  FillDag(dag_, kNodes, 3);
  ResponderConfig config;
  config.max_vertices_per_response = 5;
  FetchResponder responder(runtime_, dag_, config);

  FetchRequestMsg req;
  req.low_watermark = 0;
  req.wants = {VertexRef{3, 0}};
  responder.OnRequest(1, req.Encode());

  ASSERT_EQ(runtime_.sent.size(), 1u);
  auto resp = FetchResponseMsg::Decode(runtime_.sent[0].payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->vertices.size(), 5u);
}

TEST_F(FetchResponderTest, ServesPrunedHistoryThroughLookupHook) {
  FillDag(dag_, kNodes, 2);
  // Snapshot everything, order it, prune rounds 0-1 away.
  std::map<std::pair<Round, NodeId>, Vertex> history;
  for (Round r = 0; r <= 2; ++r) {
    for (NodeId src = 0; src < kNodes; ++src) {
      history[{r, src}] = *dag_.Get(r, src);
    }
  }
  for (NodeId src = 0; src < kNodes; ++src) {
    dag_.OrderHistory(2, src);
  }
  dag_.PruneBelow(2);
  ASSERT_EQ(dag_.StatusOf(1, 0), VertexStatus::kPruned);
  dag_.SetPrunedLookup([&](Round r, NodeId src) -> std::optional<Vertex> {
    auto it = history.find({r, src});
    if (it == history.end()) {
      return std::nullopt;
    }
    return it->second;
  });

  FetchResponder responder(runtime_, dag_, ResponderConfig{});
  FetchRequestMsg req;
  req.low_watermark = 0;
  req.wants = {VertexRef{1, 0}};
  responder.OnRequest(2, req.Encode());

  ASSERT_EQ(runtime_.sent.size(), 1u);
  auto resp = FetchResponseMsg::Decode(runtime_.sent[0].payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->vertices.size(), 5u);  // (1,0) + round 0, all from history.
  EXPECT_EQ(responder.stats().wal_vertices_served, 5u);
}

TEST_F(FetchResponderTest, UnknownWantProducesNoResponse) {
  FetchResponder responder(runtime_, dag_, ResponderConfig{});
  FetchRequestMsg req;
  req.low_watermark = 0;
  req.wants = {VertexRef{9, 3}};
  responder.OnRequest(1, req.Encode());
  EXPECT_TRUE(runtime_.sent.empty());
  EXPECT_EQ(responder.stats().requests_served, 1u);
}

TEST_F(FetchResponderTest, MalformedRequestIgnored) {
  FetchResponder responder(runtime_, dag_, ResponderConfig{});
  responder.OnRequest(1, ToBytes("garbage"));
  EXPECT_TRUE(runtime_.sent.empty());
  EXPECT_EQ(responder.stats().requests_served, 0u);
}

// ---- Integration: catch-up and crash recovery over the simulator ----

using OrderLog = std::vector<std::pair<Round, NodeId>>;

// A simulated AppNode cluster with per-node WALs, optional Byzantine
// members, and crash/restart support (the crashed node's object is kept
// alive as a zombie so its scheduled callbacks stay valid; the network
// drops its traffic and its handler slot is re-pointed at the restarted
// instance).
class SyncCluster {
 public:
  struct Options {
    uint32_t n = 4;
    TimeMicros round_timeout = Millis(300);
    Round gc_depth = 12;
    bool use_wal = true;
    uint32_t txs_per_node = 300;
    std::set<ByzantineBehavior> behaviors;
    std::vector<NodeId> byzantine;
    uint32_t withhold_keep = UINT32_MAX;
  };

  explicit SyncCluster(Options opts)
      : opts_(std::move(opts)),
        keychain_(17, opts_.n),
        topology_(ClanTopology::Full(opts_.n)),
        network_(scheduler_, LatencyMatrix::Uniform(opts_.n, Millis(10)),
                 NetworkConfig{1e9, 0}),
        ordered_(opts_.n),
        recovered_(opts_.n) {
    for (NodeId id = 0; id < opts_.n; ++id) {
      std::remove(WalPath(id).c_str());
      runtimes_.push_back(std::make_unique<SimRuntime>(network_, id));
      nodes_.push_back(MakeNode(id, *runtimes_[id], &ordered_[id]));
      network_.RegisterHandler(id, nodes_[id].get());
    }
  }

  ~SyncCluster() {
    for (NodeId id = 0; id < opts_.n; ++id) {
      std::remove(WalPath(id).c_str());
    }
  }

  void StartAll() {
    for (auto& node : nodes_) {
      node->Start();
    }
  }

  void RunUntil(TimeMicros t) { scheduler_.RunUntil(t); }

  void Crash(NodeId id) { network_.SetCrashed(id, true); }

  // Replaces the crashed node with a fresh AppNode over the same identity
  // and WAL; its live ordered stream lands in RestartOrdered(id).
  AppNode& Restart(NodeId id) {
    zombies_.push_back(std::move(nodes_[id]));
    zombie_runtimes_.push_back(std::move(runtimes_[id]));
    runtimes_[id] = std::make_unique<SimRuntime>(network_, id);
    restart_ordered_[id] = OrderLog{};
    nodes_[id] = MakeNode(id, *runtimes_[id], &restart_ordered_[id]);
    network_.RegisterHandler(id, nodes_[id].get());
    network_.SetCrashed(id, false);
    nodes_[id]->Start();
    return *nodes_[id];
  }

  AppNode& node(NodeId id) { return *nodes_[id]; }
  SimNetwork& network() { return network_; }
  const OrderLog& Ordered(NodeId id) const { return ordered_[id]; }
  const OrderLog& RestartOrdered(NodeId id) { return restart_ordered_[id]; }
  const RecoveryState& Recovered(NodeId id) const { return recovered_[id]; }

  bool IsByzantine(NodeId id) const {
    return std::find(opts_.byzantine.begin(), opts_.byzantine.end(), id) !=
           opts_.byzantine.end();
  }

  SyncStats TotalSyncStats() {
    SyncStats total;
    for (auto& node : nodes_) {
      total += node->sync_stats();
    }
    return total;
  }

  // The shared committed prefix: `a` and `b` must agree where they overlap.
  static void ExpectPrefixConsistent(const OrderLog& a, const OrderLog& b) {
    const size_t common = std::min(a.size(), b.size());
    for (size_t i = 0; i < common; ++i) {
      ASSERT_EQ(a[i], b[i]) << "order divergence at position " << i;
    }
  }

 private:
  std::string WalPath(NodeId id) const {
    return ::testing::TempDir() + "/clandag_sync_" +
           std::to_string(reinterpret_cast<uintptr_t>(this)) + "_" +
           std::to_string(id) + ".wal";
  }

  std::unique_ptr<AppNode> MakeNode(NodeId id, Runtime& sim_runtime, OrderLog* log) {
    Runtime* runtime = &sim_runtime;
    if (IsByzantine(id)) {
      byz_runtimes_.push_back(
          std::make_unique<ByzantineRuntime>(sim_runtime, opts_.behaviors));
      byz_runtimes_.back()->SetWithholdKeep(opts_.withhold_keep);
      runtime = byz_runtimes_.back().get();
    }
    AppNodeOptions options;
    options.consensus.num_nodes = opts_.n;
    options.consensus.num_faults = (opts_.n - 1) / 3;
    options.consensus.round_timeout = opts_.round_timeout;
    options.consensus.gc_depth = opts_.gc_depth;
    if (opts_.use_wal) {
      options.wal_path = WalPath(id);
    }
    AppNodeCallbacks callbacks;
    callbacks.on_ordered = [log](const Vertex& v) { log->push_back({v.round, v.source}); };
    callbacks.on_recovered = [this, id](const RecoveryState& state) {
      recovered_[id] = state;
    };
    auto node =
        std::make_unique<AppNode>(*runtime, keychain_, topology_, options, callbacks);
    for (uint64_t i = 0; i < opts_.txs_per_node; ++i) {
      node->SubmitTransaction(id * 100000 + i, Bytes(64, 0x5a));
    }
    return node;
  }

  Options opts_;
  Scheduler scheduler_;
  Keychain keychain_;
  ClanTopology topology_;
  SimNetwork network_;
  std::vector<std::unique_ptr<SimRuntime>> runtimes_;
  std::vector<std::unique_ptr<ByzantineRuntime>> byz_runtimes_;
  std::vector<std::unique_ptr<AppNode>> nodes_;
  std::vector<std::unique_ptr<AppNode>> zombies_;
  std::vector<std::unique_ptr<SimRuntime>> zombie_runtimes_;
  std::vector<OrderLog> ordered_;
  std::map<NodeId, OrderLog> restart_ordered_;
  std::vector<RecoveryState> recovered_;
};

// Drops every message addressed to `deaf` until `until` (the node keeps
// sending: its round-0 vertex and timeout votes still reach the others).
void MakeDeaf(SimNetwork& network, NodeId deaf, TimeMicros until) {
  network.SetAdversary(
      [deaf, until](NodeId, NodeId to, MsgType, TimeMicros now) -> TimeMicros {
        if (to == deaf && now < until) {
          return kDropMessage;
        }
        return 0;
      });
}

TEST(SyncIntegration, DeafNodeCatchesUpThroughFetchProtocol) {
  SyncCluster::Options opts;
  opts.n = 4;
  opts.round_timeout = Millis(200);
  opts.gc_depth = 8;  // Small: peers prune, forcing WAL-backed history serving.
  SyncCluster cluster(opts);
  constexpr NodeId kDeaf = 3;

  MakeDeaf(cluster.network(), kDeaf, Seconds(4));
  cluster.StartAll();
  cluster.RunUntil(Seconds(4));

  const int64_t peer_mid = cluster.node(0).consensus().LastCommittedRound();
  ASSERT_GT(peer_mid, 10) << "survivors must keep committing while one node is deaf";
  EXPECT_LT(cluster.node(kDeaf).consensus().LastCommittedRound(), peer_mid / 2);

  cluster.RunUntil(Seconds(12));

  const int64_t peer = cluster.node(0).consensus().LastCommittedRound();
  const int64_t deaf = cluster.node(kDeaf).consensus().LastCommittedRound();
  EXPECT_GT(peer, peer_mid);
  EXPECT_GE(deaf + 4, peer) << "deaf node failed to catch up";

  // The repair ran through the fetch protocol, including pruned history
  // served back out of a peer's WAL.
  const SyncStats deaf_stats = cluster.node(kDeaf).sync_stats();
  EXPECT_GT(deaf_stats.requests_sent, 0u);
  EXPECT_GT(deaf_stats.vertices_fetched, 0u);
  const SyncStats total = cluster.TotalSyncStats();
  EXPECT_GT(total.requests_served, 0u);
  EXPECT_GT(total.wal_vertices_served, 0u);

  // Same committed prefix as everyone else.
  SyncCluster::ExpectPrefixConsistent(cluster.Ordered(kDeaf), cluster.Ordered(0));
  EXPECT_GT(cluster.Ordered(kDeaf).size(), 0u);
}

TEST(SyncIntegration, DeafNodeCatchesUpDespiteBlockWithholding) {
  SyncCluster::Options opts;
  opts.n = 7;
  opts.round_timeout = Millis(250);
  opts.gc_depth = 16;
  opts.behaviors = {ByzantineBehavior::kWithholdBlocks};
  opts.byzantine = {1};
  opts.withhold_keep = 3;  // >= f_c + 1 block receivers stay served.
  SyncCluster cluster(opts);
  constexpr NodeId kDeaf = 6;

  MakeDeaf(cluster.network(), kDeaf, Seconds(4));
  cluster.StartAll();
  cluster.RunUntil(Seconds(14));

  const int64_t peer = cluster.node(0).consensus().LastCommittedRound();
  const int64_t deaf = cluster.node(kDeaf).consensus().LastCommittedRound();
  ASSERT_GT(peer, 10);
  EXPECT_GE(deaf + 4, peer);
  EXPECT_GT(cluster.node(kDeaf).sync_stats().vertices_fetched, 0u);

  for (NodeId id = 0; id < opts.n; ++id) {
    if (!cluster.IsByzantine(id)) {
      SyncCluster::ExpectPrefixConsistent(cluster.Ordered(id), cluster.Ordered(0));
    }
  }
}

TEST(SyncIntegration, CrashedNodeRestartsFromWalAndRejoins) {
  SyncCluster::Options opts;
  opts.n = 4;
  opts.round_timeout = Millis(300);
  opts.gc_depth = 16;
  SyncCluster cluster(opts);
  constexpr NodeId kVictim = 3;

  cluster.StartAll();
  cluster.RunUntil(Seconds(3));
  const int64_t committed_at_crash = cluster.node(kVictim).consensus().LastCommittedRound();
  ASSERT_GT(committed_at_crash, 0);
  const OrderLog first_life = cluster.Ordered(kVictim);
  cluster.Crash(kVictim);

  cluster.RunUntil(Seconds(6));
  AppNode& restarted = cluster.Restart(kVictim);

  // WAL replay restored the durable committed prefix...
  const RecoveryStats& rec = restarted.recovery_stats();
  EXPECT_TRUE(rec.recovered);
  EXPECT_GT(rec.wal_records, 0u);
  ASSERT_GT(rec.restored_vertices, 0u);
  EXPECT_GT(rec.resume_round, 0u);
  // ... and the prefix is exactly the order the cluster agreed on.
  const RecoveryState& state = cluster.Recovered(kVictim);
  ASSERT_EQ(state.ordered.size(), rec.restored_vertices);
  ASSERT_LE(state.ordered.size(), first_life.size());
  for (size_t i = 0; i < state.ordered.size(); ++i) {
    EXPECT_EQ(std::make_pair(state.ordered[i].round, state.ordered[i].source), first_life[i]);
  }
  // Resumes proposing strictly above every round of its previous life.
  EXPECT_GE(rec.resume_round, static_cast<Round>(committed_at_crash));

  cluster.RunUntil(Seconds(12));

  const int64_t victim = restarted.consensus().LastCommittedRound();
  const int64_t peer = cluster.node(0).consensus().LastCommittedRound();
  EXPECT_GE(victim + 4, peer) << "restarted node failed to close the gap";
  EXPECT_GT(restarted.sync_stats().vertices_fetched, 0u) << "gap must be fetched";

  // Identical ordered output: replayed prefix + live stream == peer order.
  const OrderLog& reference = cluster.Ordered(0);
  const OrderLog& live = cluster.RestartOrdered(kVictim);
  EXPECT_GT(live.size(), 0u);
  const size_t prefix = rec.restored_vertices;
  for (size_t i = 0; i < live.size() && prefix + i < reference.size(); ++i) {
    ASSERT_EQ(live[i], reference[prefix + i]) << "post-restart divergence at " << i;
  }
}

TEST(SyncIntegration, CrashRecoveryDespiteBlockWithholding) {
  SyncCluster::Options opts;
  opts.n = 7;
  opts.round_timeout = Millis(300);
  opts.gc_depth = 16;
  opts.behaviors = {ByzantineBehavior::kWithholdBlocks};
  opts.byzantine = {1};
  opts.withhold_keep = 3;
  SyncCluster cluster(opts);
  constexpr NodeId kVictim = 6;

  cluster.StartAll();
  cluster.RunUntil(Seconds(3));
  cluster.Crash(kVictim);
  cluster.RunUntil(Seconds(6));
  AppNode& restarted = cluster.Restart(kVictim);
  EXPECT_TRUE(restarted.recovery_stats().recovered);
  cluster.RunUntil(Seconds(13));

  const int64_t victim = restarted.consensus().LastCommittedRound();
  const int64_t peer = cluster.node(0).consensus().LastCommittedRound();
  ASSERT_GT(peer, 10);
  EXPECT_GE(victim + 4, peer);

  const OrderLog& reference = cluster.Ordered(0);
  const OrderLog& live = cluster.RestartOrdered(kVictim);
  const size_t prefix = restarted.recovery_stats().restored_vertices;
  for (size_t i = 0; i < live.size() && prefix + i < reference.size(); ++i) {
    ASSERT_EQ(live[i], reference[prefix + i]) << "post-restart divergence at " << i;
  }
}

TEST(SyncIntegration, RestartWithoutWalStartsFresh) {
  SyncCluster::Options opts;
  opts.n = 4;
  opts.use_wal = false;
  // Without a WAL there is no history serving: peers must not prune, or the
  // amnesiac node's gap becomes unobtainable (the documented limitation).
  opts.gc_depth = 1000000;
  SyncCluster cluster(opts);
  cluster.StartAll();
  cluster.RunUntil(Seconds(2));
  cluster.Crash(3);
  cluster.RunUntil(Seconds(4));
  AppNode& restarted = cluster.Restart(3);
  EXPECT_FALSE(restarted.recovery_stats().recovered);
  cluster.RunUntil(Seconds(10));
  // Even without persistence the fetch path rebuilds the DAG from peers.
  EXPECT_GE(restarted.consensus().LastCommittedRound() + 4,
            cluster.node(0).consensus().LastCommittedRound());
  EXPECT_GT(restarted.sync_stats().vertices_fetched, 0u);
  SyncCluster::ExpectPrefixConsistent(cluster.RestartOrdered(3), cluster.Ordered(0));
}

}  // namespace
}  // namespace clandag
