// Entry point for the SCT suite: installs a global environment that fails
// the binary if the runtime lock-order analyzer recorded any acquisition-
// graph cycle, rank violation, or wait-while-holding across ALL tests —
// the "zero findings across the SCT suite" gate from ISSUE 8. Detection-
// power tests that provoke violations on purpose call ResetForTest()
// before finishing.

#include <gtest/gtest.h>

#include "testing/sct/lock_order.h"

namespace {

class LockOrderEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    const auto stats = clandag::sct::lockorder::GetStats();
    EXPECT_EQ(stats.cycles, 0u)
        << "lock-acquisition-graph cycles recorded across the suite:\n"
        << clandag::sct::lockorder::Report();
    EXPECT_EQ(stats.rank_violations, 0u)
        << "lock-rank violations recorded across the suite:\n"
        << clandag::sct::lockorder::Report();
    EXPECT_EQ(stats.wait_while_holding, 0u)
        << "condvar waits while holding a second lock:\n"
        << clandag::sct::lockorder::Report();
  }
};

}  // namespace

int main(int argc, char** argv) {
  // Death tests (deadlock detection fixtures) spawn threads before dying.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ::testing::InitGoogleTest(&argc, argv);
  ::testing::AddGlobalTestEnvironment(new LockOrderEnvironment);
  return RUN_ALL_TESTS();
}
