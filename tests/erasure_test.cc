// Reed-Solomon codec and AVID-style erasure-coded RBC tests (the paper §3
// remark's comparison target).

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "rbc/avid_rbc.h"
#include "sim/network.h"

namespace clandag {
namespace {

Bytes RandomBytes(DetRng& rng, size_t len) {
  Bytes out(len);
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

TEST(Gf256, FieldAxioms) {
  DetRng rng(1);
  for (int i = 0; i < 2000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.Next());
    uint8_t b = static_cast<uint8_t>(rng.Next() | 1);  // Nonzero-ish.
    if (b == 0) {
      b = 1;
    }
    EXPECT_EQ(Gf256::Mul(a, 1), a);
    EXPECT_EQ(Gf256::Mul(a, 0), 0);
    if (a != 0) {
      EXPECT_EQ(Gf256::Mul(a, Gf256::Inv(a)), 1);
    }
    EXPECT_EQ(Gf256::Mul(Gf256::Div(a, b), b), a);
  }
}

TEST(Gf256, MultiplicationCommutesAndAssociates) {
  DetRng rng(2);
  for (int i = 0; i < 2000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.Next());
    uint8_t b = static_cast<uint8_t>(rng.Next());
    uint8_t c = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(Gf256::Mul(a, b), Gf256::Mul(b, a));
    EXPECT_EQ(Gf256::Mul(Gf256::Mul(a, b), c), Gf256::Mul(a, Gf256::Mul(b, c)));
    // Distributivity over XOR (field addition).
    EXPECT_EQ(Gf256::Mul(a, b ^ c), Gf256::Mul(a, b) ^ Gf256::Mul(a, c));
  }
}

struct RsParam {
  uint32_t k;
  uint32_t parity;
  size_t len;
};

class ReedSolomonRoundTrip : public ::testing::TestWithParam<RsParam> {};

TEST_P(ReedSolomonRoundTrip, DataShardsSufficient) {
  const RsParam p = GetParam();
  ReedSolomon rs(p.k, p.parity);
  DetRng rng(p.k * 131 + p.len);
  Bytes data = RandomBytes(rng, p.len);
  std::vector<RsShare> shares = rs.Encode(data);
  ASSERT_EQ(shares.size(), p.k + p.parity);
  // Decode from the first k (systematic) shares.
  std::vector<RsShare> subset(shares.begin(), shares.begin() + p.k);
  auto decoded = rs.Decode(subset);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST_P(ReedSolomonRoundTrip, ParityOnlyReconstructs) {
  const RsParam p = GetParam();
  if (p.parity < p.k) {
    GTEST_SKIP() << "not enough parity shards for a parity-only decode";
  }
  ReedSolomon rs(p.k, p.parity);
  DetRng rng(p.k * 7 + p.len);
  Bytes data = RandomBytes(rng, p.len);
  std::vector<RsShare> shares = rs.Encode(data);
  std::vector<RsShare> subset(shares.end() - p.k, shares.end());
  auto decoded = rs.Decode(subset);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST_P(ReedSolomonRoundTrip, RandomSubsetsReconstruct) {
  const RsParam p = GetParam();
  ReedSolomon rs(p.k, p.parity);
  DetRng rng(p.len + 5);
  Bytes data = RandomBytes(rng, p.len);
  std::vector<RsShare> shares = rs.Encode(data);
  for (int trial = 0; trial < 5; ++trial) {
    auto idx = rng.SampleWithoutReplacement(p.k + p.parity, p.k);
    std::vector<RsShare> subset;
    for (uint32_t i : idx) {
      subset.push_back(shares[i]);
    }
    auto decoded = rs.Decode(subset);
    ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
    EXPECT_EQ(*decoded, data);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReedSolomonRoundTrip,
    ::testing::Values(RsParam{1, 3, 100}, RsParam{2, 2, 1}, RsParam{5, 10, 4096},
                      RsParam{17, 33, 1000}, RsParam{17, 33, 100000}, RsParam{3, 1, 17},
                      RsParam{16, 16, 65536}),
    [](const ::testing::TestParamInfo<RsParam>& info) {
      return "k" + std::to_string(info.param.k) + "p" + std::to_string(info.param.parity) +
             "len" + std::to_string(info.param.len);
    });

TEST(ReedSolomon, TooFewSharesFails) {
  ReedSolomon rs(4, 4);
  Bytes data = ToBytes("needs four shares");
  std::vector<RsShare> shares = rs.Encode(data);
  std::vector<RsShare> subset(shares.begin(), shares.begin() + 3);
  EXPECT_FALSE(rs.Decode(subset).has_value());
}

TEST(ReedSolomon, DuplicateIndicesDontCount) {
  ReedSolomon rs(3, 3);
  Bytes data = ToBytes("abcabcabc");
  std::vector<RsShare> shares = rs.Encode(data);
  std::vector<RsShare> subset = {shares[0], shares[0], shares[0]};
  EXPECT_FALSE(rs.Decode(subset).has_value());
}

TEST(ReedSolomon, EmptyPayloadRoundTrips) {
  ReedSolomon rs(4, 2);
  std::vector<RsShare> shares = rs.Encode(Bytes{});
  auto decoded = rs.Decode(shares);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

// ---- AVID RBC over the simulated network ----

class AvidCluster {
 public:
  explicit AvidCluster(uint32_t n)
      : network_(scheduler_, LatencyMatrix::Uniform(n, Millis(10)), NetworkConfig{1e9, 0}),
        deliveries_(n) {
    AvidConfig config;
    config.num_nodes = n;
    config.num_faults = (n - 1) / 3;
    for (NodeId id = 0; id < n; ++id) {
      runtimes_.push_back(std::make_unique<SimRuntime>(network_, id));
      engines_.push_back(std::make_unique<AvidRbc>(
          *runtimes_[id], config,
          [this, id](NodeId sender, Round round, const Digest&, const Bytes& value) {
            deliveries_[id].push_back({sender, round, value});
          }));
      adapters_.push_back(std::make_unique<Adapter>(engines_.back().get()));
      network_.RegisterHandler(id, adapters_.back().get());
    }
  }

  struct Delivery {
    NodeId sender;
    Round round;
    Bytes value;
  };

  void Run(TimeMicros t = Seconds(10)) { scheduler_.RunUntil(t); }
  AvidRbc& engine(NodeId id) { return *engines_[id]; }
  SimNetwork& network() { return network_; }
  const std::vector<Delivery>& DeliveriesAt(NodeId id) const { return deliveries_[id]; }

 private:
  struct Adapter : MessageHandler {
    explicit Adapter(AvidRbc* engine) : engine(engine) {}
    void OnMessage(NodeId from, MsgType type, const Bytes& payload) override {
      engine->HandleMessage(from, type, payload);
    }
    AvidRbc* engine;
  };

  Scheduler scheduler_;
  SimNetwork network_;
  std::vector<std::unique_ptr<SimRuntime>> runtimes_;
  std::vector<std::unique_ptr<AvidRbc>> engines_;
  std::vector<std::unique_ptr<Adapter>> adapters_;
  std::vector<std::vector<Delivery>> deliveries_;
};

TEST(AvidRbc, HonestSenderDeliversEverywhere) {
  for (uint32_t n : {4u, 7u, 13u}) {
    AvidCluster cluster(n);
    DetRng rng(n);
    Bytes value = RandomBytes(rng, 10'000);
    cluster.engine(0).Broadcast(1, value);
    cluster.Run();
    for (NodeId id = 0; id < n; ++id) {
      ASSERT_EQ(cluster.DeliveriesAt(id).size(), 1u) << "n=" << n << " node " << id;
      EXPECT_EQ(cluster.DeliveriesAt(id)[0].value, value);
    }
  }
}

TEST(AvidRbc, DeliversWithCrashedMinority) {
  const uint32_t n = 7;
  AvidCluster cluster(n);
  cluster.network().SetCrashed(5, true);
  cluster.network().SetCrashed(6, true);
  Bytes value = ToBytes("tolerates two of seven down");
  cluster.engine(0).Broadcast(1, value);
  cluster.Run();
  for (NodeId id = 0; id < 5; ++id) {
    ASSERT_EQ(cluster.DeliveriesAt(id).size(), 1u) << "node " << id;
    EXPECT_EQ(cluster.DeliveriesAt(id)[0].value, value);
  }
}

TEST(AvidRbc, ConcurrentSenders) {
  const uint32_t n = 7;
  AvidCluster cluster(n);
  for (NodeId s = 0; s < n; ++s) {
    cluster.engine(s).Broadcast(2, ToBytes("payload-" + std::to_string(s)));
  }
  cluster.Run();
  for (NodeId id = 0; id < n; ++id) {
    EXPECT_EQ(cluster.DeliveriesAt(id).size(), n) << "node " << id;
  }
}

TEST(AvidRbc, CodingTimeIsTracked) {
  AvidCluster cluster(4);
  DetRng rng(9);
  cluster.engine(0).Broadcast(1, RandomBytes(rng, 100'000));
  cluster.Run();
  EXPECT_GT(cluster.engine(0).CodingMicros(), 0.0);  // Encode cost.
  EXPECT_GT(cluster.engine(1).CodingMicros(), 0.0);  // Decode cost.
}

}  // namespace
}  // namespace clandag
