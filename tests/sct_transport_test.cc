// SCT tests for the TcpRuntime command queue. The epoll loop itself stays
// free-running under SCT (it blocks on real sockets), but Send()/Post()
// callers ARE scheduled — so the explorer drives every interleaving of the
// producer side of command_mu_ against Stop() and restart, while the
// lock-order analyzer watches the leaf-lock discipline. The hybrid rules
// (scheduler.h) apply: scheduled threads never suspend while holding the
// REAL command_mu_ (no schedule point inside the critical section), so the
// free-running loop can always drain.

#include <atomic>
#include <memory>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/thread.h"
#include "net/tcp_transport.h"
#include "sct_test_util.h"
#include "testing/sct/explore.h"

namespace clandag {
namespace {

using sct::Strategy;
using sct_test::BaseSeed;
using sct_test::DeepMultiplier;

class CountingHandler final : public MessageHandler {
 public:
  void OnMessage(NodeId, MsgType, const Bytes&) override { ++received_; }
  int received() const { return received_.load(); }

 private:
  std::atomic<int> received_{0};
};

// Distinct port range: the suite may run in parallel with clandag_tests'
// transport/chaos tests (base 19000+).
constexpr uint16_t kSctBasePort = 24150;

TEST(SctTransport, SendersRaceLoopThenStopThenRestart) {
  SCT_REQUIRE_BUILD();
  auto result = sct::Explore(
      {.strategy = Strategy::kRandomWalk,
       .seed = BaseSeed(),
       .schedules = 12 * DeepMultiplier()},
      [] {
        TcpConfig cfg;
        cfg.id = 0;
        cfg.num_nodes = 2;  // Peer 1 never comes up: preconnect-buffer path.
        cfg.base_port = kSctBasePort;
        CountingHandler handler;
        auto payload = std::make_shared<const Bytes>(Bytes{1, 2, 3});
        {
          TcpRuntime rt(cfg, &handler);
          rt.Start();
          std::atomic<int> posts_run{0};
          auto sender = [&] {
            rt.Send(1, /*type=*/7, payload, payload->size());
            rt.Post([&posts_run] { ++posts_run; });
            rt.Send(1, /*type=*/7, payload, payload->size());
          };
          Thread s1("send-1", sender);
          Thread s2("send-2", sender);
          sender();
          s1.join();
          s2.join();
          rt.Stop();
          // After Stop: late Send/Post must be safe no-ops (enqueued, never
          // executed, no touching of closed descriptors).
          rt.Send(1, /*type=*/7, payload, payload->size());
          rt.Post([&posts_run] { ++posts_run; });
          rt.Stop();  // Idempotent.
          SCT_ASSERT(posts_run.load() <= 3);
        }
        {
          // Restart on the same port: bind-after-close must succeed and the
          // fresh command queue must work.
          TcpRuntime rt(cfg, &handler);
          rt.Start();
          rt.Send(1, /*type=*/7, payload, payload->size());
          rt.Stop();
        }
      });
  EXPECT_EQ(result.failures, 0u)
      << result.first_failure_message << "\n" << result.first_failure_trace;
}

TEST(SctTransport, SelfSendDeliversBeforeStop) {
  SCT_REQUIRE_BUILD();
  auto result = sct::Explore(
      {.strategy = Strategy::kPct,
       .seed = BaseSeed(),
       .schedules = 8 * DeepMultiplier()},
      [] {
        TcpConfig cfg;
        cfg.id = 0;
        cfg.num_nodes = 1;
        cfg.base_port = static_cast<uint16_t>(kSctBasePort + 10);
        CountingHandler handler;
        auto payload = std::make_shared<const Bytes>(Bytes{9});
        TcpRuntime rt(cfg, &handler);
        rt.Start();
        CLANDAG_CHECK(rt.WaitConnected(Seconds(10)));
        Thread s("self-send",
                 [&] { rt.Send(0, /*type=*/3, payload, payload->size()); });
        s.join();
        // Give the free-running loop a real-time window to deliver, then
        // stop; delivery count is checked after the join inside Stop().
        rt.Stop();
        SCT_ASSERT(handler.received() <= 1);
      });
  EXPECT_EQ(result.failures, 0u)
      << result.first_failure_message << "\n" << result.first_failure_trace;
}

}  // namespace
}  // namespace clandag
