// Allocs-per-commit regression guard.
//
// Links bench/alloc_counter.cc (counting global operator new), so it lives in
// its own test binary — the counter must not leak into clandag_tests. Runs
// the Figure-5a n = 50 scenario at one load point and asserts the steady-state
// allocation rate stays in pooled-memory territory. Before the buffer pool,
// single-serialize broadcast, and shared cert buffers, this scenario cost
// ~10,700 allocs per committed vertex; with them it costs ~730. The bound
// below is ~3x the pooled figure: loose enough for allocator noise and small
// protocol changes, tight enough that losing any one of the pooling layers
// (each worth thousands of allocs per commit) fails the test.

#include <gtest/gtest.h>

#include "bench/alloc_counter.h"
#include "core/scenario.h"

namespace clandag {
namespace {

TEST(AllocRegression, SteadyStateAllocsPerCommitStaysPooled) {
  ScenarioOptions options;
  options.num_nodes = 50;
  options.mode = DisseminationMode::kSingleClan;
  options.clan_size = 32;
  options.num_clans = 2;
  options.txs_per_proposal = 500;
  options.tx_size = 512;
  options.topology = ScenarioOptions::Topology::kGcpGeo;
  options.uplink_bytes_per_sec = 125e6;
  options.flavor = RbcFlavor::kTwoRound;
  options.multicast_cert = false;
  options.verify_signatures = false;
  options.cost.enabled = true;
  options.cost.per_message = 20;
  options.cost.per_block_byte_us = 0.002;
  options.round_timeout = Seconds(60);
  options.warmup_rounds = 3;
  options.measure_rounds = 6;

  const bench::AllocSnapshot before = bench::ReadAllocCounter();
  const ScenarioResult result = RunScenario(options);
  const bench::AllocSnapshot after = bench::ReadAllocCounter();

  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_TRUE(result.agreement_ok);
  ASSERT_GT(result.ordered_vertices, 0u);

  const double allocs_per_commit =
      static_cast<double>(after.allocs - before.allocs) /
      static_cast<double>(result.ordered_vertices);
  RecordProperty("allocs_per_commit", static_cast<int>(allocs_per_commit));
  EXPECT_LT(allocs_per_commit, 1500.0)
      << "allocs/commit regressed toward pre-pool levels (~10,700); "
         "profile with bench_fig5a_n50 before relaxing this bound";
}

// The n = 150 Figure-6 shape at one quick load point: the vote-tracker and
// DAG-index arenas matter most at large n, where per-round map churn scales
// with the committee. Kept quick (few measured rounds) so the gate stays
// cheap enough for every CI run; the full sweep lives in bench_fig6.
TEST(AllocRegression, N150AllocsPerCommitStaysArenaBacked) {
  ScenarioOptions options;
  options.num_nodes = 150;
  options.mode = DisseminationMode::kFull;
  options.clan_size = 80;
  options.num_clans = 2;
  options.txs_per_proposal = 250;
  options.tx_size = 512;
  options.topology = ScenarioOptions::Topology::kGcpGeo;
  options.uplink_bytes_per_sec = 125e6;
  options.flavor = RbcFlavor::kTwoRound;
  options.multicast_cert = false;
  options.verify_signatures = false;
  options.cost.enabled = true;
  options.cost.per_message = 20;
  options.cost.per_block_byte_us = 0.002;
  options.round_timeout = Seconds(60);
  options.warmup_rounds = 2;
  options.measure_rounds = 3;

  const bench::AllocSnapshot before = bench::ReadAllocCounter();
  const ScenarioResult result = RunScenario(options);
  const bench::AllocSnapshot after = bench::ReadAllocCounter();

  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_TRUE(result.agreement_ok);
  ASSERT_GT(result.ordered_vertices, 0u);

  const double allocs_per_commit =
      static_cast<double>(after.allocs - before.allocs) /
      static_cast<double>(result.ordered_vertices);
  RecordProperty("allocs_per_commit", static_cast<int>(allocs_per_commit));
  EXPECT_LT(allocs_per_commit, 3600.0)
      << "n=150 allocs/commit regressed past the pre-arena figure (~3,622); "
         "profile with bench_fig6_tput_vs_load before relaxing this bound";
}

}  // namespace
}  // namespace clandag
