// Snapshot subsystem tests (DESIGN.md §14).
//
// Unit level: SnapshotStore atomic write / rotate / fallback chain under
// injected torn writes and corruption, WAL compaction against a snapshot
// mark, bounded replay after a cut.
//
// Integration level (deterministic simulation): a checkpointing node
// restarts replaying only the WAL suffix past its last durable snapshot; a
// deep-lagging peer whose gap fell below everyone's pruned horizon catches
// up through the chunked snapshot transfer; a node whose snapshot files are
// lost degrades to floor-only recovery and rejoins; every path preserves the
// cluster's total order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/app_node.h"
#include "sim/network.h"
#include "sync/snapshot.h"
#include "sync/wal.h"
#include "sync/wal_vertex_store.h"

namespace clandag {
namespace {

// ---- SnapshotStore ----

class SnapshotStoreTest : public ::testing::Test {
 protected:
  SnapshotStoreTest() {
    base_ = ::testing::TempDir() + "/clandag_snap_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".snap";
    RemoveAll();
  }
  ~SnapshotStoreTest() override { RemoveAll(); }

  void RemoveAll() {
    std::remove(base_.c_str());
    std::remove((base_ + ".prev").c_str());
    std::remove((base_ + ".tmp").c_str());
  }

  static SnapshotData MakeSnap(uint64_t seq) {
    SnapshotData snap;
    snap.seq = seq;
    snap.last_committed = 10 * seq;
    snap.order_count = 40 * seq;
    snap.dag_floor = 10 * seq > 4 ? 10 * seq - 4 : 0;
    snap.propose_floor = 10 * seq + 1;
    snap.initial_balance = 1000;
    snap.balances = {{0, 990}, {3, 1010}};
    snap.state_digest = Digest::Of(ToBytes("state" + std::to_string(seq)));
    snap.executed_txs = 5 * seq;
    snap.rejected_txs = seq;
    Vertex v;
    v.round = 10 * seq;
    v.source = 2;
    v.strong_edges = {StrongEdge{1, Digest::Of(ToBytes("parent"))}};
    snap.vertices.push_back(v);
    snap.ordered.push_back(1);
    return snap;
  }

  static void ExpectEqual(const SnapshotData& a, const SnapshotData& b) {
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.last_committed, b.last_committed);
    EXPECT_EQ(a.order_count, b.order_count);
    EXPECT_EQ(a.dag_floor, b.dag_floor);
    EXPECT_EQ(a.propose_floor, b.propose_floor);
    EXPECT_EQ(a.initial_balance, b.initial_balance);
    EXPECT_EQ(a.balances, b.balances);
    EXPECT_EQ(a.state_digest, b.state_digest);
    EXPECT_EQ(a.executed_txs, b.executed_txs);
    EXPECT_EQ(a.rejected_txs, b.rejected_txs);
    ASSERT_EQ(a.vertices.size(), b.vertices.size());
    for (size_t i = 0; i < a.vertices.size(); ++i) {
      EXPECT_EQ(a.vertices[i], b.vertices[i]);
    }
    EXPECT_EQ(a.ordered, b.ordered);
  }

  // Flips one byte in the middle of `path`.
  static void CorruptFile(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_GT(size, 16);
    std::fseek(f, size / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, size / 2, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }

  std::string base_;
};

TEST_F(SnapshotStoreTest, WriteLoadRoundTrips) {
  const SnapshotData snap = MakeSnap(1);
  {
    SnapshotStore store(base_);
    ASSERT_TRUE(store.Write(snap));
    ASSERT_NE(store.serve_state(), nullptr);
    EXPECT_EQ(store.serve_state()->seq, 1u);
    EXPECT_EQ(store.NextSeq(), 2u);
  }
  SnapshotStore store(base_);
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->from_prev);
  ExpectEqual(loaded->data, snap);
  EXPECT_EQ(store.NextSeq(), 2u);
  ASSERT_NE(store.serve_state(), nullptr);
  EXPECT_EQ(store.serve_state()->order_count, snap.order_count);
}

TEST_F(SnapshotStoreTest, LoadWithNoFilesReturnsNothing) {
  SnapshotStore store(base_);
  EXPECT_FALSE(store.Load().has_value());
  EXPECT_EQ(store.serve_state(), nullptr);
  EXPECT_EQ(store.NextSeq(), 1u);
}

TEST_F(SnapshotStoreTest, SecondWriteRotatesFirstToPrev) {
  SnapshotStore store(base_);
  ASSERT_TRUE(store.Write(MakeSnap(1)));
  ASSERT_TRUE(store.Write(MakeSnap(2)));

  SnapshotStore reader(base_);
  auto loaded = reader.Load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->data.seq, 2u);
  EXPECT_FALSE(loaded->from_prev);

  // The rotated .prev still holds seq 1 intact.
  SnapshotStore prev_only(base_ + ".gone");
  std::rename((base_ + ".prev").c_str(), (base_ + ".gone.prev").c_str());
  auto prev = prev_only.Load();
  ASSERT_TRUE(prev.has_value());
  EXPECT_TRUE(prev->from_prev);
  EXPECT_EQ(prev->data.seq, 1u);
  std::remove((base_ + ".gone.prev").c_str());
}

TEST_F(SnapshotStoreTest, CorruptCurrentFallsBackToPrev) {
  {
    SnapshotStore store(base_);
    ASSERT_TRUE(store.Write(MakeSnap(1)));
    ASSERT_TRUE(store.Write(MakeSnap(2)));
  }
  CorruptFile(base_);
  SnapshotStore store(base_);
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->from_prev);
  ExpectEqual(loaded->data, MakeSnap(1));
}

TEST_F(SnapshotStoreTest, TornTmpWriteLeavesPriorSnapshotIntact) {
  SnapshotStore store(base_);
  ASSERT_TRUE(store.Write(MakeSnap(1)));
  store.SetWriteFault([](uint64_t seq) {
    return seq == 2 ? SnapshotWriteFault::kTornTmp : SnapshotWriteFault::kNone;
  });
  EXPECT_FALSE(store.Write(MakeSnap(2)));

  // Restart: the half-written temp must not shadow the good current file.
  SnapshotStore reopened(base_);
  auto loaded = reopened.Load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->from_prev);
  EXPECT_EQ(loaded->data.seq, 1u);
}

TEST_F(SnapshotStoreTest, SkipRenameWriteLeavesPriorSnapshotIntact) {
  SnapshotStore store(base_);
  ASSERT_TRUE(store.Write(MakeSnap(1)));
  store.SetWriteFault(
      [](uint64_t) { return SnapshotWriteFault::kSkipRename; });
  EXPECT_FALSE(store.Write(MakeSnap(2)));

  SnapshotStore reopened(base_);
  auto loaded = reopened.Load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->data.seq, 1u);
}

TEST_F(SnapshotStoreTest, CorruptPayloadWriteFallsBackOnLoad) {
  SnapshotStore store(base_);
  ASSERT_TRUE(store.Write(MakeSnap(1)));
  store.SetWriteFault([](uint64_t seq) {
    return seq == 2 ? SnapshotWriteFault::kCorruptPayload : SnapshotWriteFault::kNone;
  });
  // Bit rot is invisible at write time (the rename lands, the in-memory
  // serve state holds the good bytes) ...
  EXPECT_TRUE(store.Write(MakeSnap(2)));
  ASSERT_NE(store.serve_state(), nullptr);
  EXPECT_EQ(store.serve_state()->seq, 2u);

  // ... but a restart's checksum verification rejects it and degrades to
  // the rotated previous snapshot.
  SnapshotStore reopened(base_);
  auto loaded = reopened.Load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->from_prev);
  EXPECT_EQ(loaded->data.seq, 1u);
}

// ---- WAL compaction against a snapshot ----

Vertex MakeVertex(Round round, NodeId source) {
  Vertex v;
  v.round = round;
  v.source = source;
  return v;
}

class WalCutTest : public ::testing::Test {
 protected:
  WalCutTest() {
    path_ = ::testing::TempDir() + "/clandag_cut_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".wal";
    std::remove(path_.c_str());
  }
  ~WalCutTest() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(WalCutTest, CutToSnapshotBoundsReplay) {
  {
    WalVertexStore store(path_);
    ASSERT_TRUE(store.Load());
    store.AppendProposal(0);
    for (Round r = 0; r < 8; ++r) {
      store.AppendOrdered(MakeVertex(r, 0));
      store.AppendOrdered(MakeVertex(r, 1));
    }
    store.AppendAnchor(7);
    // 18 records; the snapshot covers all 16 order positions through round 7.
    const uint64_t dropped = store.CutToSnapshot(1, 16, 7);
    EXPECT_EQ(dropped, 18u);
    EXPECT_EQ(store.IndexedCount(), 0u);
    // Pruned history is no longer WAL-servable (the snapshot serves it now).
    EXPECT_FALSE(store.Lookup(3, 0).has_value());
    // Appends after the cut land in the fresh log.
    store.AppendOrdered(MakeVertex(8, 0));
    store.AppendAnchor(8);
  }
  WalVertexStore reopened(path_);
  ASSERT_TRUE(reopened.Load());
  const RecoveryState& rec = reopened.recovery();
  EXPECT_EQ(rec.records, 3u);  // mark + one vertex + one anchor: bounded.
  EXPECT_EQ(rec.snapshot_seq, 1u);
  EXPECT_EQ(rec.order_base, 16u);
  EXPECT_EQ(rec.snapshot_committed, 7);
  EXPECT_EQ(rec.last_committed, 8);
  ASSERT_EQ(rec.ordered.size(), 1u);
  EXPECT_EQ(rec.ordered[0].round, 8u);
}

// ---- Integration: checkpointing cluster over the simulator ----

using OrderLog = std::vector<std::pair<Round, NodeId>>;

// Minimal simulated AppNode cluster with per-node WAL + snapshot store,
// crash/restart via the zombie pattern, and install tracking: every
// on_snapshot_installed event records the snapshot's order base and how many
// live entries the node had emitted at that instant, so tests can align the
// post-install stream against a reference log.
class SnapCluster {
 public:
  struct Options {
    uint32_t n = 4;
    TimeMicros round_timeout = Millis(300);
    Round gc_depth = 16;
    Round snapshot_interval = 4;
    uint32_t txs_per_node = 300;
  };

  struct Install {
    uint64_t order_count = 0;
    size_t live_at_install = 0;
  };

  explicit SnapCluster(Options opts)
      : opts_(opts),
        keychain_(17, opts_.n),
        topology_(ClanTopology::Full(opts_.n)),
        network_(scheduler_, LatencyMatrix::Uniform(opts_.n, Millis(10)),
                 NetworkConfig{1e9, 0}),
        ordered_(opts_.n),
        recovered_(opts_.n) {
    for (NodeId id = 0; id < opts_.n; ++id) {
      RemoveFiles(id);
      runtimes_.push_back(std::make_unique<SimRuntime>(network_, id));
      nodes_.push_back(MakeNode(id, *runtimes_[id], &ordered_[id]));
      network_.RegisterHandler(id, nodes_[id].get());
    }
  }

  ~SnapCluster() {
    for (NodeId id = 0; id < opts_.n; ++id) {
      RemoveFiles(id);
    }
  }

  void StartAll() {
    for (auto& node : nodes_) {
      node->Start();
    }
  }

  void RunUntil(TimeMicros t) { scheduler_.RunUntil(t); }
  void Crash(NodeId id) { network_.SetCrashed(id, true); }

  AppNode& Restart(NodeId id) {
    zombies_.push_back(std::move(nodes_[id]));
    zombie_runtimes_.push_back(std::move(runtimes_[id]));
    runtimes_[id] = std::make_unique<SimRuntime>(network_, id);
    restart_ordered_[id] = OrderLog{};
    nodes_[id] = MakeNode(id, *runtimes_[id], &restart_ordered_[id]);
    network_.RegisterHandler(id, nodes_[id].get());
    network_.SetCrashed(id, false);
    nodes_[id]->Start();
    return *nodes_[id];
  }

  std::string SnapPath(NodeId id) const { return WalPath(id) + ".snap"; }
  void DeleteSnapshots(NodeId id) {
    std::remove(SnapPath(id).c_str());
    std::remove((SnapPath(id) + ".prev").c_str());
  }

  AppNode& node(NodeId id) { return *nodes_[id]; }
  const OrderLog& Ordered(NodeId id) const { return ordered_[id]; }
  const OrderLog& RestartOrdered(NodeId id) { return restart_ordered_[id]; }
  const RecoveryState& Recovered(NodeId id) const { return recovered_[id]; }
  const std::vector<Install>& Installs(NodeId id) { return installs_[id]; }

  SyncStats TotalSyncStats() {
    SyncStats total;
    for (auto& node : nodes_) {
      total += node->sync_stats();
    }
    return total;
  }

 private:
  std::string WalPath(NodeId id) const {
    return ::testing::TempDir() + "/clandag_snapc_" +
           std::to_string(reinterpret_cast<uintptr_t>(this)) + "_" +
           std::to_string(id) + ".wal";
  }

  void RemoveFiles(NodeId id) const {
    std::remove(WalPath(id).c_str());
    std::remove((WalPath(id) + ".snap").c_str());
    std::remove((WalPath(id) + ".snap.prev").c_str());
    std::remove((WalPath(id) + ".snap.tmp").c_str());
  }

  std::unique_ptr<AppNode> MakeNode(NodeId id, Runtime& runtime, OrderLog* log) {
    AppNodeOptions options;
    options.consensus.num_nodes = opts_.n;
    options.consensus.num_faults = (opts_.n - 1) / 3;
    options.consensus.round_timeout = opts_.round_timeout;
    options.consensus.gc_depth = opts_.gc_depth;
    options.wal_path = WalPath(id);
    options.snapshot_interval_rounds = opts_.snapshot_interval;
    AppNodeCallbacks callbacks;
    callbacks.on_ordered = [log](const Vertex& v) { log->push_back({v.round, v.source}); };
    callbacks.on_recovered = [this, id](const RecoveryState& state) {
      recovered_[id] = state;
    };
    callbacks.on_snapshot_installed = [this, id, log](const SnapshotData& snap) {
      installs_[id].push_back(Install{snap.order_count, log->size()});
    };
    auto node =
        std::make_unique<AppNode>(runtime, keychain_, topology_, options, callbacks);
    for (uint64_t i = 0; i < opts_.txs_per_node; ++i) {
      node->SubmitTransaction(id * 100000 + i, Bytes(64, 0x5a));
    }
    return node;
  }

  Options opts_;
  Scheduler scheduler_;
  Keychain keychain_;
  ClanTopology topology_;
  SimNetwork network_;
  std::vector<std::unique_ptr<SimRuntime>> runtimes_;
  std::vector<std::unique_ptr<AppNode>> nodes_;
  std::vector<std::unique_ptr<AppNode>> zombies_;
  std::vector<std::unique_ptr<SimRuntime>> zombie_runtimes_;
  std::vector<OrderLog> ordered_;
  std::map<NodeId, OrderLog> restart_ordered_;
  std::vector<RecoveryState> recovered_;
  std::map<NodeId, std::vector<Install>> installs_;
};

TEST(SnapshotIntegration, RestartReplaysOnlyRecordsPastLastSnapshot) {
  SnapCluster::Options opts;
  opts.snapshot_interval = 4;
  // Wide in-memory horizon and a short outage: the gap stays fetchable, so
  // this exercises the pure WAL-continuation path (no install).
  opts.gc_depth = 64;
  SnapCluster cluster(opts);
  constexpr NodeId kVictim = 3;

  cluster.StartAll();
  cluster.RunUntil(Seconds(6));
  const size_t full_history = cluster.Ordered(kVictim).size();
  ASSERT_GT(full_history, 100u) << "need a meaningful history before the crash";
  cluster.Crash(kVictim);
  cluster.RunUntil(Millis(6500));
  AppNode& restarted = cluster.Restart(kVictim);

  const RecoveryStats& rec = restarted.recovery_stats();
  EXPECT_TRUE(rec.recovered);
  EXPECT_TRUE(rec.from_snapshot);
  EXPECT_GT(rec.snapshot_seq, 0u);
  EXPECT_GT(rec.order_base, 0u);
  EXPECT_GT(rec.snapshot_vertices, 0u);
  // The whole point: replay is bounded by the checkpoint interval, not the
  // node's lifetime. The WAL held only the records past the last snapshot.
  EXPECT_LT(rec.wal_records, full_history / 2)
      << "WAL replay was not bounded by the snapshot";
  // The snapshot base + WAL suffix reconstructs the position count. A crash
  // in the gap between a snapshot write and its WAL cut can leave the
  // snapshot covering a few positions past the mark, hence >= not ==.
  EXPECT_GE(restarted.TotalOrderPosition(), rec.order_base + rec.restored_vertices);
  EXPECT_LE(restarted.TotalOrderPosition(), full_history);

  // The replayed suffix sits at exactly the global positions it had in the
  // first life, and the live stream continues from there in lockstep with a
  // node that never restarted.
  const RecoveryState& state = cluster.Recovered(kVictim);
  const OrderLog& reference = cluster.Ordered(0);
  for (size_t i = 0; i < state.ordered.size(); ++i) {
    ASSERT_LT(rec.order_base + i, reference.size());
    EXPECT_EQ(std::make_pair(state.ordered[i].round, state.ordered[i].source),
              reference[rec.order_base + i]);
  }

  cluster.RunUntil(Seconds(12));
  const int64_t victim = restarted.consensus().LastCommittedRound();
  const int64_t peer = cluster.node(0).consensus().LastCommittedRound();
  EXPECT_GE(victim + 4, peer) << "restarted node failed to close the gap";

  // No install happened (the gap never left the fetchable window), so the
  // live stream continues at exactly base + prefix, position for position.
  ASSERT_TRUE(cluster.Installs(kVictim).empty());
  const OrderLog& live = cluster.RestartOrdered(kVictim);
  const size_t base = rec.order_base + state.ordered.size();
  ASSERT_GT(live.size(), 0u);
  for (size_t i = 0; i < live.size() && base + i < reference.size(); ++i) {
    ASSERT_EQ(live[i], reference[base + i]) << "post-restart divergence at " << i;
  }
}

TEST(SnapshotIntegration, DeepLaggardCatchesUpViaSnapshotTransfer) {
  SnapCluster::Options opts;
  opts.gc_depth = 8;  // Tight horizon: a multi-second outage falls below it.
  opts.snapshot_interval = 4;
  SnapCluster cluster(opts);
  constexpr NodeId kLaggard = 3;

  cluster.StartAll();
  cluster.RunUntil(Seconds(2));
  cluster.Crash(kLaggard);
  cluster.RunUntil(Seconds(8));  // Peers commit far past the laggard's WAL.
  AppNode& restarted = cluster.Restart(kLaggard);
  cluster.RunUntil(Seconds(14));

  // The gap was repaired by a chunked snapshot transfer, not vertex fetch.
  const SyncStats stats = restarted.sync_stats();
  EXPECT_GE(stats.snapshots_installed, 1u) << "laggard never installed a snapshot";
  const SyncStats total = cluster.TotalSyncStats();
  EXPECT_GT(total.snapshot_offers_sent, 0u);
  EXPECT_GT(total.snapshot_chunks_served, 0u);

  const int64_t laggard = restarted.consensus().LastCommittedRound();
  const int64_t peer = cluster.node(0).consensus().LastCommittedRound();
  EXPECT_GE(laggard + 4, peer) << "laggard failed to catch up";

  // Entries ordered after the install line up with the reference log at the
  // snapshot's global order base.
  const std::vector<SnapCluster::Install>& installs = cluster.Installs(kLaggard);
  ASSERT_FALSE(installs.empty());
  const SnapCluster::Install last = installs.back();
  const OrderLog& live = cluster.RestartOrdered(kLaggard);
  const OrderLog& reference = cluster.Ordered(0);
  ASSERT_GT(live.size(), last.live_at_install);
  for (size_t i = last.live_at_install; i < live.size(); ++i) {
    const size_t pos = last.order_count + (i - last.live_at_install);
    if (pos >= reference.size()) {
      break;
    }
    ASSERT_EQ(live[i], reference[pos]) << "post-install divergence at " << i;
  }
}

TEST(SnapshotIntegration, LostSnapshotFilesDegradeToFloorOnlyThenRepair) {
  SnapCluster::Options opts;
  opts.snapshot_interval = 4;
  opts.gc_depth = 8;  // The outage below leaves a gap only a snapshot closes.
  SnapCluster cluster(opts);
  constexpr NodeId kVictim = 3;

  cluster.StartAll();
  cluster.RunUntil(Seconds(6));
  cluster.Crash(kVictim);
  // Both snapshot files vanish (disk swap, operator error): the WAL's mark
  // points at a snapshot that no longer exists.
  cluster.DeleteSnapshots(kVictim);
  cluster.RunUntil(Seconds(8));
  AppNode& restarted = cluster.Restart(kVictim);

  const RecoveryStats& rec = restarted.recovery_stats();
  EXPECT_TRUE(rec.recovered);
  EXPECT_FALSE(rec.from_snapshot);  // Nothing to install: floor-only.
  EXPECT_GT(rec.order_base, 0u);    // But the mark still anchors positions.

  cluster.RunUntil(Seconds(14));
  const int64_t victim = restarted.consensus().LastCommittedRound();
  const int64_t peer = cluster.node(0).consensus().LastCommittedRound();
  EXPECT_GE(victim + 4, peer) << "degraded node failed to rejoin";

  // The lost execution state is repaired by a peer-served snapshot (the node
  // is deep behind after the outage), and the post-install stream agrees
  // with the cluster position for position.
  EXPECT_GE(restarted.sync_stats().snapshots_installed, 1u);
  const std::vector<SnapCluster::Install>& installs = cluster.Installs(kVictim);
  ASSERT_FALSE(installs.empty());
  const SnapCluster::Install last = installs.back();
  const OrderLog& reference = cluster.Ordered(0);
  const OrderLog& live = cluster.RestartOrdered(kVictim);
  ASSERT_GT(live.size(), last.live_at_install);
  for (size_t i = last.live_at_install; i < live.size(); ++i) {
    const size_t pos = last.order_count + (i - last.live_at_install);
    if (pos >= reference.size()) {
      break;
    }
    ASSERT_EQ(live[i], reference[pos]) << "post-repair divergence at " << i;
  }
}

TEST(SnapshotIntegration, CrashDuringCheckpointWriteRecoversFromPrior) {
  SnapCluster::Options opts;
  opts.snapshot_interval = 4;
  SnapCluster cluster(opts);
  constexpr NodeId kVictim = 3;

  cluster.StartAll();
  cluster.RunUntil(Seconds(6));
  cluster.Crash(kVictim);
  // Simulate the torn checkpoint the crash would have left: a garbage .tmp
  // next to the intact current file must never shadow it.
  {
    std::FILE* f = std::fopen((cluster.SnapPath(kVictim) + ".tmp").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("half a snapsh", f);
    std::fclose(f);
  }
  cluster.RunUntil(Seconds(7));
  AppNode& restarted = cluster.Restart(kVictim);

  const RecoveryStats& rec = restarted.recovery_stats();
  EXPECT_TRUE(rec.recovered);
  EXPECT_TRUE(rec.from_snapshot);

  cluster.RunUntil(Seconds(12));
  EXPECT_GE(restarted.consensus().LastCommittedRound() + 4,
            cluster.node(0).consensus().LastCommittedRound());
}

}  // namespace
}  // namespace clandag
