// Chaos subsystem tests: targeted FaultPlans through the full harness
// (partition-and-heal, crash/restart over WAL recovery, Byzantine mixes),
// bit-for-bit determinism of seed replay, and the oracles' ability to
// actually catch violations (an oracle that cannot fail proves nothing).

#include <gtest/gtest.h>

#include "fault/chaos.h"
#include "fault/fault_plan.h"
#include "fault/oracles.h"

namespace clandag {
namespace {

// 7 nodes, f = 2: a quorum-preserving split (5|2) that heals.
FaultPlan PartitionPlan() {
  FaultPlan plan;
  plan.seed = 9001;
  plan.num_nodes = 7;
  plan.horizon = Seconds(10);
  PartitionFault p;
  p.start = Seconds(2);
  p.heal = Seconds(5);
  p.side = {0, 1, 1, 0, 0, 0, 0};
  plan.partitions.push_back(p);
  return plan;
}

TEST(ChaosHarness, PartitionHealsAndCommits) {
  const ChaosReport report = RunChaosPlan(PartitionPlan(), ChaosOptions{});
  EXPECT_TRUE(report.safety_ok) << report.error;
  EXPECT_TRUE(report.liveness_ok) << report.error;
  // The split actually cut traffic, and the minority caught back up.
  EXPECT_GT(report.injected.partition_drops, 0u);
  for (int64_t committed : report.per_node_committed) {
    EXPECT_GT(committed, 0);
  }
}

TEST(ChaosHarness, CrashRestartRecoversFromWal) {
  FaultPlan plan;
  plan.seed = 9002;
  plan.num_nodes = 4;
  plan.horizon = Seconds(10);
  CrashFault c;
  c.node = 2;
  c.crash_at = Seconds(3);
  c.restart_at = Seconds(6);
  plan.crashes.push_back(c);

  const ChaosReport report = RunChaosPlan(plan, ChaosOptions{});
  EXPECT_TRUE(report.ok) << report.error;
  // The restart found a non-empty WAL: recovery composed with chaos.
  EXPECT_EQ(report.restarts_recovered, 1u);
  EXPECT_GT(report.injected.crash_drops, 0u);
}

TEST(ChaosHarness, PermanentCrashStaysWithinFaultBudget) {
  FaultPlan plan;
  plan.seed = 9003;
  plan.num_nodes = 4;
  plan.horizon = Seconds(8);
  CrashFault c;
  c.node = 3;
  c.crash_at = Seconds(2);  // No restart: permanently down (f = 1 budget).
  plan.crashes.push_back(c);

  const ChaosReport report = RunChaosPlan(plan, ChaosOptions{});
  EXPECT_TRUE(report.ok) << report.error;
  // The dead node is exempt from liveness; the survivors kept committing.
  EXPECT_GT(report.final_committed_round, 0u);
}

TEST(ChaosHarness, EquivocatorCannotBreakSafety) {
  FaultPlan plan;
  plan.seed = 9004;
  plan.num_nodes = 4;
  plan.horizon = Seconds(8);
  ByzantineAssignment b;
  b.node = 1;
  b.behaviors = {ByzantineBehavior::kEquivocateVertices};
  plan.byzantine.push_back(b);

  const ChaosReport report = RunChaosPlan(plan, ChaosOptions{});
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(ChaosHarness, SeedReplayIsDeterministic) {
  const FaultPlan plan = FaultPlan::Random(424242, 7);
  const ChaosReport a = RunChaosPlan(plan, ChaosOptions{});
  const ChaosReport b = RunChaosPlan(plan, ChaosOptions{});
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.final_committed_round, b.final_committed_round);
  EXPECT_EQ(a.honest_ordered, b.honest_ordered);
  EXPECT_EQ(a.per_node_committed, b.per_node_committed);
  EXPECT_EQ(a.per_node_round, b.per_node_round);
  EXPECT_EQ(a.injected.passed, b.injected.passed);
  EXPECT_EQ(a.injected.InjectedDrops(), b.injected.InjectedDrops());
  EXPECT_EQ(a.injected.delays, b.injected.delays);
  EXPECT_EQ(a.injected.duplicates, b.injected.duplicates);
}

TEST(ChaosHarness, RandomPlansRespectLivenessEnvelope) {
  // A couple of generated plans end-to-end (the 20-seed sweep lives in the
  // ctest `chaos` label; this is the smoke version wired into tier 1).
  for (uint64_t seed : {7u, 11u}) {
    const FaultPlan plan = FaultPlan::Random(seed, 7);
    const ChaosReport report = RunChaosPlan(plan, ChaosOptions{});
    EXPECT_TRUE(report.ok) << "seed " << seed << ": " << report.error;
  }
}

// --- Snapshot mode: checkpointing + snapshot faults through the harness ---

TEST(ChaosHarness, CheckpointedRestartBoundsReplay) {
  FaultPlan plan;
  plan.seed = 9005;
  plan.num_nodes = 4;
  plan.horizon = Seconds(10);
  CrashFault c;
  c.node = 2;
  c.crash_at = Seconds(3);
  c.restart_at = Seconds(6);
  plan.crashes.push_back(c);

  ChaosOptions options;
  options.snapshot_interval_rounds = 4;
  const ChaosReport report = RunChaosPlan(plan, options);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.restarts_recovered, 1u);
  EXPECT_GT(report.snapshots_written, 0u);
}

TEST(ChaosHarness, CrashMidInstallRetriesAndHeals) {
  FaultPlan plan;
  plan.seed = 9006;
  plan.num_nodes = 4;
  plan.horizon = Seconds(12);
  CrashFault c;
  c.node = 3;
  c.crash_at = Seconds(2);
  c.restart_at = Seconds(6);  // Long outage: returns far below the horizon.
  plan.crashes.push_back(c);
  SnapshotFault sf;
  sf.node = 3;
  sf.kind = SnapshotFaultKind::kCrashMidInstall;
  sf.at_seq = 1;
  sf.restart_delay = Millis(400);
  plan.snapshots.push_back(sf);

  ChaosOptions options;
  options.snapshot_interval_rounds = 4;
  options.gc_depth = 8;  // Deep gap: catch-up must go through a snapshot.
  const ChaosReport report = RunChaosPlan(plan, options);
  EXPECT_TRUE(report.ok) << report.error;
  // First install attempt crashed; the retry after restart landed.
  EXPECT_GE(report.snapshots_installed, 1u) << report.error;
}

TEST(ChaosHarness, SnapshotFaultSweepHoldsOracles) {
  // Generated plans with torn/corrupt checkpoints and crash-mid-install in
  // the mix (the full sweep runs under the ctest `chaos` label and in CI via
  // chaos_runner --snapshots; these are the tier-1 smoke seeds).
  for (uint64_t seed : {4u, 5u, 6u}) {
    const FaultPlan plan = FaultPlan::RandomWithSnapshots(seed, 7);
    ChaosOptions options;
    options.snapshot_interval_rounds = 8;
    options.gc_depth = 16;
    const ChaosReport report = RunChaosPlan(plan, options);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": " << report.error;
    EXPECT_EQ(report.duplicate_executions, 0u) << "seed " << seed;
    EXPECT_GT(report.snapshots_written, 0u) << "seed " << seed;
  }
}

// --- Oracle falsifiability: each check must trip on a real violation. ---

TEST(SafetyOracleTest, CatchesDivergenceAcrossBases) {
  // Node 1's log starts at global position 2 (snapshot-installed): the
  // overlap comparison must still catch a divergence inside it.
  SafetyOracle oracle(2);
  oracle.OnOrdered(0, 1, 0);
  oracle.OnOrdered(0, 1, 1);
  oracle.OnOrdered(0, 2, 0);
  oracle.ResetLog(1, {}, 2);
  oracle.OnOrdered(1, 2, 1);  // Position 2: node 0 has (2, 0).
  EXPECT_NE(oracle.Check(), "");
}

TEST(SafetyOracleTest, ConsistentSuffixLogAtBasePasses) {
  SafetyOracle oracle(2);
  oracle.OnOrdered(0, 1, 0);
  oracle.OnOrdered(0, 1, 1);
  oracle.OnOrdered(0, 2, 0);
  oracle.ResetLog(1, {}, 2);
  oracle.OnOrdered(1, 2, 0);  // Matches node 0 at position 2.
  oracle.OnOrdered(1, 2, 1);  // Past node 0's log: no overlap, no complaint.
  EXPECT_EQ(oracle.Check(), "");
}

// --- Oracle falsifiability (continued) ---

TEST(SafetyOracleTest, CatchesOrderDivergence) {
  SafetyOracle oracle(2);
  oracle.OnOrdered(0, 1, 0);
  oracle.OnOrdered(0, 1, 1);
  oracle.OnOrdered(1, 1, 0);
  oracle.OnOrdered(1, 1, 2);  // Diverges at index 1.
  EXPECT_NE(oracle.Check(), "");
}

TEST(SafetyOracleTest, CatchesDeliveryInconsistency) {
  SafetyOracle oracle(2);
  oracle.OnCompleted(0, 3, 1, Digest::Of(ToBytes("body A")));
  oracle.OnCompleted(1, 3, 1, Digest::Of(ToBytes("body B")));
  EXPECT_NE(oracle.Check(), "");
}

TEST(SafetyOracleTest, IgnoresFaultyObservers) {
  SafetyOracle oracle(2);
  oracle.SetFaulty(1, true);
  oracle.OnCompleted(0, 3, 1, Digest::Of(ToBytes("body A")));
  oracle.OnCompleted(1, 3, 1, Digest::Of(ToBytes("body B")));  // Liar's tap.
  EXPECT_EQ(oracle.Check(), "");
}

TEST(SafetyOracleTest, PrefixConsistentLogsPass) {
  SafetyOracle oracle(2);
  oracle.OnOrdered(0, 1, 0);
  oracle.OnOrdered(0, 1, 1);
  oracle.OnOrdered(0, 2, 0);
  oracle.OnOrdered(1, 1, 0);  // Shorter log, but a prefix.
  oracle.OnOrdered(1, 1, 1);
  EXPECT_EQ(oracle.Check(), "");
}

TEST(LivenessOracleTest, CatchesPostHealStall) {
  LivenessOracle oracle(2);
  oracle.OnCommit(0, 10);
  oracle.OnCommit(1, 10);
  oracle.MarkHealed();
  // No commits after healing.
  EXPECT_NE(oracle.Check(3, {0, 1}), "");
}

TEST(LivenessOracleTest, CatchesNodeLeftBehind) {
  LivenessOracle oracle(2);
  oracle.OnCommit(0, 10);
  oracle.MarkHealed();
  oracle.OnCommit(0, 20);  // Node 1 never catches up to the heal frontier.
  EXPECT_NE(oracle.Check(3, {0, 1}), "");
}

TEST(LivenessOracleTest, ProgressAfterHealPasses) {
  LivenessOracle oracle(2);
  oracle.OnCommit(0, 10);
  oracle.OnCommit(1, 9);
  oracle.MarkHealed();
  oracle.OnCommit(0, 20);
  oracle.OnCommit(1, 20);
  EXPECT_EQ(oracle.Check(3, {0, 1}), "");
}

}  // namespace
}  // namespace clandag
