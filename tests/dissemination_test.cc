// Unit tests of the merged vertex+block disseminator: echo gating, block
// verification, pull paths, and rejection of protocol-violating messages.

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "consensus/dissemination.h"
#include "sim/network.h"

namespace clandag {
namespace {

// A cluster of bare disseminators (no consensus on top) plus helpers to
// inject hand-crafted traffic.
class DissemCluster {
 public:
  struct Events {
    std::vector<Vertex> vals;
    std::vector<Vertex> completed;
    std::vector<BlockInfo> blocks;
  };

  DissemCluster(uint32_t n, ClanTopology topology)
      : keychain_(31, n),
        topology_(std::move(topology)),
        network_(scheduler_, LatencyMatrix::Uniform(n, Millis(5)), NetworkConfig{1e9, 0}),
        events_(n) {
    DisseminationConfig config;
    config.num_nodes = n;
    config.num_faults = (n - 1) / 3;
    for (NodeId id = 0; id < n; ++id) {
      runtimes_.push_back(std::make_unique<SimRuntime>(network_, id));
      DisseminationCallbacks callbacks;
      callbacks.on_vertex_val = [this, id](const Vertex& v) { events_[id].vals.push_back(v); };
      callbacks.on_vertex_complete = [this, id](const Vertex& v, const Digest&) {
        events_[id].completed.push_back(v);
      };
      callbacks.on_block = [this, id](const BlockInfo& b) { events_[id].blocks.push_back(b); };
      dissems_.push_back(std::make_unique<VertexDisseminator>(*runtimes_[id], keychain_,
                                                              topology_, config,
                                                              std::move(callbacks)));
      adapters_.push_back(std::make_unique<Adapter>(dissems_.back().get()));
      network_.RegisterHandler(id, adapters_.back().get());
    }
  }

  Vertex MakeVertex(NodeId source, Round round, std::optional<BlockInfo>* block_out,
                    uint32_t tx_count = 10) {
    Vertex v;
    v.round = round;
    v.source = source;
    if (block_out != nullptr) {
      BlockInfo b;
      b.proposer = source;
      b.round = round;
      b.created_at = 1;
      b.tx_count = tx_count;
      b.tx_size = 512;
      v.block_digest = b.ComputeDigest();
      v.block_tx_count = b.tx_count;
      v.block_created_at = b.created_at;
      *block_out = b;
    }
    return v;
  }

  void Run(TimeMicros t = Seconds(5)) { scheduler_.RunUntil(t); }

  VertexDisseminator& dissem(NodeId id) { return *dissems_[id]; }
  SimRuntime& runtime(NodeId id) { return *runtimes_[id]; }
  const Events& events(NodeId id) const { return events_[id]; }
  SimNetwork& network() { return network_; }

 private:
  struct Adapter : MessageHandler {
    explicit Adapter(VertexDisseminator* d) : dissem(d) {}
    void OnMessage(NodeId from, MsgType type, const Bytes& payload) override {
      dissem->HandleMessage(from, type, payload);
    }
    VertexDisseminator* dissem;
  };

  Scheduler scheduler_;
  Keychain keychain_;
  ClanTopology topology_;
  SimNetwork network_;
  std::vector<std::unique_ptr<SimRuntime>> runtimes_;
  std::vector<std::unique_ptr<VertexDisseminator>> dissems_;
  std::vector<std::unique_ptr<Adapter>> adapters_;
  std::vector<Events> events_;
};

TEST(Dissemination, HonestProposalCompletesEverywhere) {
  const uint32_t n = 7;
  DissemCluster cluster(n, ClanTopology::SingleClanSpread(n, 4));
  std::optional<BlockInfo> block;
  Vertex v = cluster.MakeVertex(0, 1, &block);
  cluster.dissem(0).Propose(v, block);
  cluster.Run();
  for (NodeId id = 0; id < n; ++id) {
    ASSERT_EQ(cluster.events(id).completed.size(), 1u) << "node " << id;
    EXPECT_EQ(cluster.events(id).completed[0].source, 0u);
    // Only clan members (0..3) receive the block.
    EXPECT_EQ(cluster.events(id).blocks.size(), id < 4 ? 1u : 0u) << "node " << id;
  }
}

TEST(Dissemination, ClanMembersEchoOnlyWithBlock) {
  // Send the vertex but not the block: no clan member can echo, so with a
  // clan quorum of f_c+1 = 2 needed and only 3 non-clan echoes available,
  // the instance must not complete.
  const uint32_t n = 7;
  DissemCluster cluster(n, ClanTopology::SingleClanSpread(n, 4));
  std::optional<BlockInfo> block;
  Vertex v = cluster.MakeVertex(0, 1, &block);
  // Hand-send only the vertex VAL (no kConsBlock messages).
  cluster.runtime(0).Broadcast(kConsVertexVal, EncodeVertex(v));
  cluster.Run(Seconds(3));
  for (NodeId id = 0; id < n; ++id) {
    EXPECT_TRUE(cluster.events(id).completed.empty()) << "node " << id;
  }
}

TEST(Dissemination, BlockBeforeVertexIsVerifiedOnArrival) {
  const uint32_t n = 4;
  DissemCluster cluster(n, ClanTopology::Full(n));
  std::optional<BlockInfo> block;
  Vertex v = cluster.MakeVertex(0, 1, &block);
  // Deliver the block first, then the vertex.
  cluster.runtime(0).Broadcast(kConsBlock, EncodeBlock(*block));
  cluster.Run(Millis(100));
  EXPECT_TRUE(cluster.events(1).blocks.empty());  // Unverified: not surfaced yet.
  cluster.runtime(0).Broadcast(kConsVertexVal, EncodeVertex(v));
  cluster.Run(Seconds(3));
  ASSERT_EQ(cluster.events(1).blocks.size(), 1u);
  ASSERT_EQ(cluster.events(1).completed.size(), 1u);
}

TEST(Dissemination, MismatchedBlockIsDropped) {
  const uint32_t n = 4;
  DissemCluster cluster(n, ClanTopology::Full(n));
  std::optional<BlockInfo> block;
  Vertex v = cluster.MakeVertex(0, 1, &block);
  BlockInfo wrong = *block;
  wrong.tx_count += 1;  // Digest no longer matches the vertex.
  cluster.runtime(0).Broadcast(kConsVertexVal, EncodeVertex(v));
  cluster.runtime(0).Broadcast(kConsBlock, EncodeBlock(wrong));
  cluster.Run(Seconds(2));
  for (NodeId id = 1; id < n; ++id) {
    EXPECT_TRUE(cluster.events(id).blocks.empty()) << "node " << id;
    EXPECT_TRUE(cluster.events(id).completed.empty()) << "node " << id;
  }
}

TEST(Dissemination, BlockFromNonProposerRejected) {
  // Single-clan mode: node 5 is outside the clan and must not propose
  // blocks; a block-bearing vertex from it is ignored outright.
  const uint32_t n = 7;
  DissemCluster cluster(n, ClanTopology::SingleClanSpread(n, 4));
  std::optional<BlockInfo> block;
  Vertex v = cluster.MakeVertex(5, 1, &block);
  cluster.runtime(5).Broadcast(kConsVertexVal, EncodeVertex(v));
  cluster.Run(Seconds(2));
  for (NodeId id = 0; id < n; ++id) {
    EXPECT_TRUE(cluster.events(id).vals.empty()) << "node " << id;
  }
}

TEST(Dissemination, VertexBodyPulledAfterQuorumWithoutBody) {
  // The sender pushes the vertex to only 3 of 4 nodes (n=4, f=1, quorum=3):
  // the echoes of those 3 complete the instance at node 3, which must pull
  // the body from an echoer before surfacing completion.
  const uint32_t n = 4;
  DissemCluster cluster(n, ClanTopology::Full(n));
  std::optional<BlockInfo> block;
  Vertex v = cluster.MakeVertex(0, 1, nullptr);
  (void)block;
  Bytes encoded = EncodeVertex(v);
  for (NodeId to = 0; to < 3; ++to) {
    cluster.runtime(0).Send(to, kConsVertexVal, Bytes(encoded));
  }
  cluster.Run(Seconds(5));
  ASSERT_EQ(cluster.events(3).completed.size(), 1u) << "node 3 must pull and complete";
  EXPECT_EQ(cluster.events(3).completed[0].source, 0u);
}

TEST(Dissemination, WithheldBlockPulledByClanAfterCompletion) {
  // Block pushed to 3 of 4 nodes: their echoes complete the instance, and
  // the fourth node fetches the block off the critical path afterwards.
  const uint32_t n = 4;
  DissemCluster cluster(n, ClanTopology::Full(n));
  std::optional<BlockInfo> block;
  Vertex v = cluster.MakeVertex(0, 1, &block);
  cluster.runtime(0).Broadcast(kConsVertexVal, EncodeVertex(v));
  Bytes block_bytes = EncodeBlock(*block);
  for (NodeId to = 0; to < 3; ++to) {
    cluster.runtime(0).Send(to, kConsBlock, Bytes(block_bytes));
  }
  cluster.Run(Seconds(5));
  for (NodeId id = 0; id < n; ++id) {
    ASSERT_EQ(cluster.events(id).completed.size(), 1u) << "node " << id;
    EXPECT_EQ(cluster.events(id).blocks.size(), 1u) << "node " << id;
  }
}

TEST(Dissemination, PruneBelowDropsState) {
  const uint32_t n = 4;
  DissemCluster cluster(n, ClanTopology::Full(n));
  std::optional<BlockInfo> block;
  Vertex v = cluster.MakeVertex(0, 1, &block);
  cluster.dissem(0).Propose(v, block);
  cluster.Run(Seconds(2));
  EXPECT_TRUE(cluster.dissem(1).HasCompleted(0, 1));
  cluster.dissem(1).PruneBelow(10);
  EXPECT_FALSE(cluster.dissem(1).HasCompleted(0, 1));
}

TEST(Dissemination, HasBlockAndGetBlock) {
  const uint32_t n = 4;
  DissemCluster cluster(n, ClanTopology::Full(n));
  std::optional<BlockInfo> block;
  Vertex v = cluster.MakeVertex(2, 3, &block, 77);
  cluster.dissem(2).Propose(v, block);
  cluster.Run(Seconds(2));
  ASSERT_TRUE(cluster.dissem(0).HasBlock(2, 3));
  const BlockInfo* stored = cluster.dissem(0).GetBlock(2, 3);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->tx_count, 77u);
  EXPECT_FALSE(cluster.dissem(0).HasBlock(2, 4));
}

}  // namespace
}  // namespace clandag
