// Decoder robustness: every wire parser must reject (never crash on)
// arbitrary, truncated, or bit-flipped bytes — exactly what Byzantine peers
// can feed a node. Deterministic pseudo-fuzz with seeded RNG.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "consensus/poa_baseline.h"
#include "consensus/wire.h"
#include "net/client_wire.h"
#include "rbc/wire.h"
#include "smr/mempool.h"
#include "sync/recovery.h"
#include "sync/snapshot.h"
#include "sync/sync_wire.h"
#include "sync/wal.h"

namespace clandag {
namespace {

Bytes RandomBytes(DetRng& rng, size_t len) {
  Bytes out(len);
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

// Runs `decode` over random buffers of assorted sizes; the only requirement
// is no crash/UB (return value may be anything).
template <typename Fn>
void FuzzRandom(uint64_t seed, Fn&& decode) {
  DetRng rng(seed);
  for (size_t len : {0u, 1u, 2u, 7u, 16u, 33u, 64u, 200u, 1000u}) {
    for (int trial = 0; trial < 50; ++trial) {
      Bytes buf = RandomBytes(rng, len);
      decode(buf);
    }
  }
}

// Truncations and single-bit flips of a valid encoding.
template <typename Fn>
void FuzzMutations(const Bytes& valid, Fn&& decode) {
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    Bytes truncated(valid.begin(), valid.begin() + cut);
    decode(truncated);
  }
  DetRng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = valid;
    mutated[rng.NextBelow(mutated.size())] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
    decode(mutated);
  }
}

TEST(WireFuzz, RbcValMsg) {
  FuzzRandom(1, [](const Bytes& b) { (void)RbcValMsg::Decode(b); });
  RbcValMsg msg;
  msg.round = 7;
  msg.digest = Digest::Of(ToBytes("x"));
  msg.value = ToBytes("some value");
  FuzzMutations(msg.Encode(), [](const Bytes& b) { (void)RbcValMsg::Decode(b); });
}

TEST(WireFuzz, RbcVoteMsg) {
  FuzzRandom(2, [](const Bytes& b) { (void)RbcVoteMsg::Decode(b); });
  RbcVoteMsg msg;
  msg.sender = 3;
  msg.round = 9;
  msg.digest = Digest::Of(ToBytes("y"));
  msg.sig = Signature{Digest::Of(ToBytes("sig"))};
  FuzzMutations(msg.Encode(), [](const Bytes& b) { (void)RbcVoteMsg::Decode(b); });
}

TEST(WireFuzz, RbcCertMsg) {
  FuzzRandom(3, [](const Bytes& b) { (void)RbcCertMsg::Decode(b); });
  Keychain keychain(1, 4);
  SignerBitmap bm(4);
  bm.Set(0);
  bm.Set(1);
  bm.Set(2);
  RbcCertMsg msg;
  msg.sender = 1;
  msg.round = 2;
  msg.digest = Digest::Of(ToBytes("z"));
  msg.sig = MultiSig::Aggregate(bm, {keychain.Sign(0, ToBytes("m")), keychain.Sign(1, ToBytes("m")),
                                     keychain.Sign(2, ToBytes("m"))});
  FuzzMutations(msg.Encode(), [](const Bytes& b) { (void)RbcCertMsg::Decode(b); });
}

TEST(WireFuzz, PullMsgs) {
  FuzzRandom(4, [](const Bytes& b) { (void)RbcPullReqMsg::Decode(b); });
  FuzzRandom(5, [](const Bytes& b) { (void)RbcPullRespMsg::Decode(b); });
  FuzzRandom(6, [](const Bytes& b) { (void)ConsPullMsg::Decode(b); });
}

TEST(WireFuzz, Vertex) {
  FuzzRandom(7, [](const Bytes& b) { (void)DecodeVertex(b); });
  Vertex v;
  v.round = 4;
  v.source = 2;
  v.block_digest = Digest::Of(ToBytes("blk"));
  v.strong_edges = {StrongEdge{0, Digest::Of(ToBytes("a"))},
                    StrongEdge{1, Digest::Of(ToBytes("b"))},
                    StrongEdge{3, Digest::Of(ToBytes("c"))}};
  v.weak_edges = {WeakEdge{1, 2, Digest::Of(ToBytes("w"))}};
  FuzzMutations(EncodeVertex(v), [](const Bytes& b) { (void)DecodeVertex(b); });
}

TEST(WireFuzz, Block) {
  FuzzRandom(8, [](const Bytes& b) { (void)DecodeBlock(b); });
  BlockInfo block;
  block.proposer = 1;
  block.round = 2;
  block.tx_count = 100;
  block.tx_size = 512;
  block.payload = ToBytes("real payload bytes");
  FuzzMutations(EncodeBlock(block), [](const Bytes& b) { (void)DecodeBlock(b); });
}

TEST(WireFuzz, TimeoutAndNoVote) {
  FuzzRandom(9, [](const Bytes& b) { (void)TimeoutMsg::Decode(b); });
  FuzzRandom(10, [](const Bytes& b) { (void)NoVoteMsg::Decode(b); });
  TimeoutMsg to;
  to.round = 3;
  to.sig = Signature{Digest::Of(ToBytes("t"))};
  FuzzMutations(to.Encode(), [](const Bytes& b) { (void)TimeoutMsg::Decode(b); });
}

TEST(WireFuzz, TxBatch) {
  FuzzRandom(11, [](const Bytes& b) { (void)DecodeTxBatch(b); });
  std::vector<Transaction> txs = {{1, 10, ToBytes("aa")}, {2, 20, ToBytes("bb")}};
  FuzzMutations(EncodeTxBatch(txs), [](const Bytes& b) { (void)DecodeTxBatch(b); });
}

TEST(WireFuzz, WalRecord) {
  // A corrupted WAL (bit rot, torn writes the framing CRC missed) must never
  // crash recovery — a node that cannot restart is a node lost forever.
  FuzzRandom(15, [](const Bytes& b) { (void)DecodeWalRecord(b); });
  Vertex v;
  v.round = 6;
  v.source = 1;
  v.block_digest = Digest::Of(ToBytes("wal blk"));
  v.strong_edges = {StrongEdge{0, Digest::Of(ToBytes("p"))}};
  FuzzMutations(EncodeVertexRecord(v), [](const Bytes& b) { (void)DecodeWalRecord(b); });
  FuzzMutations(EncodeAnchorRecord(9), [](const Bytes& b) { (void)DecodeWalRecord(b); });
  FuzzMutations(EncodeProposalRecord(11), [](const Bytes& b) { (void)DecodeWalRecord(b); });
  EXPECT_TRUE(DecodeWalRecord(EncodeVertexRecord(v)).has_value());
  EXPECT_TRUE(DecodeWalRecord(EncodeAnchorRecord(9)).has_value());
  EXPECT_TRUE(DecodeWalRecord(EncodeProposalRecord(11)).has_value());
}

TEST(WireFuzz, PoaCert) {
  FuzzRandom(12, [](const Bytes& b) {
    Reader r(b);
    PoaCert::Parse(r);
  });
}

TEST(WireFuzz, FetchRequest) {
  FuzzRandom(13, [](const Bytes& b) { (void)FetchRequestMsg::Decode(b); });
  FetchRequestMsg req;
  req.low_watermark = 17;
  req.wants = {VertexRef{20, 1}, VertexRef{21, 3}};
  FuzzMutations(req.Encode(), [](const Bytes& b) { (void)FetchRequestMsg::Decode(b); });
  EXPECT_TRUE(FetchRequestMsg::Decode(req.Encode()).has_value());
}

TEST(WireFuzz, FetchResponse) {
  FuzzRandom(14, [](const Bytes& b) { (void)FetchResponseMsg::Decode(b); });
  FetchResponseMsg resp;
  Vertex v;
  v.round = 4;
  v.source = 2;
  v.strong_edges = {StrongEdge{0, Digest::Of(ToBytes("p"))}};
  resp.vertices.push_back(v);
  FuzzMutations(resp.Encode(), [](const Bytes& b) { (void)FetchResponseMsg::Decode(b); });
  EXPECT_TRUE(FetchResponseMsg::Decode(resp.Encode()).has_value());
}

// Oversized element counts in fetch messages must be rejected before any
// allocation is sized from them.
TEST(WireFuzz, FetchRequestHugeWantCountRejected) {
  Writer w;
  w.U64(0);                 // low watermark
  w.Varint(0xffffffffULL);  // absurd want count
  EXPECT_FALSE(FetchRequestMsg::Decode(w.Buffer()).has_value());
  Writer w2;
  w2.U64(0);
  w2.Varint(kMaxFetchWants + 1);
  EXPECT_FALSE(FetchRequestMsg::Decode(w2.Buffer()).has_value());
  Writer w3;
  w3.U64(0);
  w3.Varint(0);  // Empty requests are also invalid.
  EXPECT_FALSE(FetchRequestMsg::Decode(w3.Buffer()).has_value());
}

TEST(WireFuzz, FetchResponseHugeVertexCountRejected) {
  Writer w;
  w.Varint(0xffffffffffULL);
  EXPECT_FALSE(FetchResponseMsg::Decode(w.Buffer()).has_value());
  Writer w2;
  w2.Varint(kMaxFetchVertices + 1);
  EXPECT_FALSE(FetchResponseMsg::Decode(w2.Buffer()).has_value());
}

TEST(WireFuzz, SnapshotOffer) {
  FuzzRandom(18, [](const Bytes& b) { (void)SnapshotOfferMsg::Decode(b); });
  SnapshotOfferMsg offer;
  offer.seq = 3;
  offer.last_committed = 40;
  offer.order_count = 120;
  offer.total_bytes = 5000;
  offer.chunk_size = 4096;
  offer.total_checksum = 0xdeadbeef;
  FuzzMutations(offer.Encode(), [](const Bytes& b) { (void)SnapshotOfferMsg::Decode(b); });
  EXPECT_TRUE(SnapshotOfferMsg::Decode(offer.Encode()).has_value());
}

TEST(WireFuzz, SnapshotChunkRequest) {
  FuzzRandom(19, [](const Bytes& b) { (void)SnapshotChunkRequestMsg::Decode(b); });
  SnapshotChunkRequestMsg req;
  req.seq = 3;
  req.chunk_index = 7;
  FuzzMutations(req.Encode(),
                [](const Bytes& b) { (void)SnapshotChunkRequestMsg::Decode(b); });
  EXPECT_TRUE(SnapshotChunkRequestMsg::Decode(req.Encode()).has_value());
}

TEST(WireFuzz, SnapshotChunk) {
  FuzzRandom(20, [](const Bytes& b) { (void)SnapshotChunkMsg::Decode(b); });
  SnapshotChunkMsg chunk;
  chunk.seq = 3;
  chunk.chunk_index = 1;
  chunk.chunk_count = 2;
  chunk.data = ToBytes("snapshot bytes");
  chunk.checksum = WalChecksum(chunk.data.data(), chunk.data.size());
  FuzzMutations(chunk.Encode(), [](const Bytes& b) { (void)SnapshotChunkMsg::Decode(b); });
  EXPECT_TRUE(SnapshotChunkMsg::Decode(chunk.Encode()).has_value());
}

// A chunk claiming more payload than the per-chunk cap must be rejected
// before the Bytes copy is sized from it.
TEST(WireFuzz, SnapshotChunkOversizedRejected) {
  Writer w;
  w.U64(1);                          // seq
  w.U32(0);                          // chunk_index
  w.U32(1);                          // chunk_count
  w.U32(0);                          // checksum
  w.Varint(kMaxSnapshotChunkBytes + 1);
  EXPECT_FALSE(SnapshotChunkMsg::Decode(w.Buffer()).has_value());
}

TEST(WireFuzz, SnapshotData) {
  FuzzRandom(21, [](const Bytes& b) { (void)DecodeSnapshotData(b); });
  SnapshotData snap;
  snap.seq = 2;
  snap.last_committed = 16;
  snap.order_count = 48;
  snap.dag_floor = 9;
  snap.propose_floor = 17;
  snap.initial_balance = 1000;
  snap.balances = {{1, 900}, {4, 1100}};
  snap.state_digest = Digest::Of(ToBytes("state"));
  snap.executed_txs = 30;
  snap.rejected_txs = 2;
  Vertex v;
  v.round = 16;
  v.source = 1;
  v.strong_edges = {StrongEdge{0, Digest::Of(ToBytes("p"))}};
  snap.vertices.push_back(v);
  snap.ordered.push_back(1);
  FuzzMutations(EncodeSnapshotData(snap),
                [](const Bytes& b) { (void)DecodeSnapshotData(b); });
  EXPECT_TRUE(DecodeSnapshotData(EncodeSnapshotData(snap)).has_value());
}

// Trailing junk after a well-formed fetch message must invalidate it.
TEST(WireFuzz, FetchTrailingJunkRejected) {
  FetchRequestMsg req;
  req.low_watermark = 1;
  req.wants = {VertexRef{2, 0}};
  Bytes b = req.Encode();
  b.push_back(0xab);
  EXPECT_FALSE(FetchRequestMsg::Decode(b).has_value());
}

// A vertex claiming absurd edge counts must be rejected, not allocated.
TEST(WireFuzz, VertexHugeEdgeCountRejected) {
  Writer w;
  w.U64(1);                      // round
  w.U32(0);                      // source
  Digest().Serialize(w);         // block digest
  w.U32(0);                      // tx count
  w.I64(0);                      // created_at
  w.Varint(0xffffffffULL);       // absurd strong-edge count
  auto v = DecodeVertex(w.Buffer());
  EXPECT_FALSE(v.has_value());
}

// Client request frames come straight from untrusted clients — the most
// exposed decoder in the system.
TEST(WireFuzz, ClientRequestMsg) {
  FuzzRandom(16, [](const Bytes& b) { (void)ClientRequestMsg::Decode(b); });
  ClientRequestMsg msg;
  msg.client_id = 77;
  msg.client_seq = 12345;
  msg.payload = ToBytes("transfer 3 coins");
  FuzzMutations(msg.Encode(), [](const Bytes& b) { (void)ClientRequestMsg::Decode(b); });
  EXPECT_TRUE(ClientRequestMsg::Decode(msg.Encode()).has_value());
}

TEST(WireFuzz, ClientReplyMsg) {
  FuzzRandom(17, [](const Bytes& b) { (void)ClientReplyMsg::Decode(b); });
  ClientReplyMsg msg;
  msg.client_id = 77;
  msg.client_seq = 12345;
  msg.status = ClientReplyStatus::kCommitted;
  msg.round = 42;
  msg.proposer = 3;
  msg.state_digest = Digest::Of(ToBytes("state"));
  FuzzMutations(msg.Encode(), [](const Bytes& b) { (void)ClientReplyMsg::Decode(b); });
  EXPECT_TRUE(ClientReplyMsg::Decode(msg.Encode()).has_value());
}

// A request claiming a payload over the hard cap must be rejected before
// any buffer is sized from the claimed length.
TEST(WireFuzz, ClientRequestOversizedPayloadRejected) {
  Writer w;
  w.U32(1);                              // client id
  w.U32(0);                              // client seq
  w.Varint(kMaxClientPayloadBytes + 1);  // absurd payload length
  EXPECT_FALSE(ClientRequestMsg::Decode(w.Buffer()).has_value());
}

// An out-of-range status byte from a Byzantine node must not map onto a
// valid enum value.
TEST(WireFuzz, ClientReplyBadStatusRejected) {
  ClientReplyMsg msg;
  msg.client_id = 1;
  msg.client_seq = 2;
  msg.status = ClientReplyStatus::kCommitted;
  Bytes b = msg.Encode();
  // The status byte follows the two u32 identifiers.
  b[8] = 0xee;
  EXPECT_FALSE(ClientReplyMsg::Decode(b).has_value());
}

// Valid encodings always round-trip (sanity for the fuzz corpus).
TEST(WireFuzz, ValidEncodingsAccepted) {
  RbcVoteMsg msg;
  msg.sender = 1;
  msg.round = 2;
  msg.digest = Digest::Of(ToBytes("ok"));
  EXPECT_TRUE(RbcVoteMsg::Decode(msg.Encode()).has_value());
  Vertex v;
  v.round = 0;
  v.source = 0;
  EXPECT_TRUE(DecodeVertex(EncodeVertex(v)).has_value());
}

}  // namespace
}  // namespace clandag
