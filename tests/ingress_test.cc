// Ingress pipeline unit + integration tests: admission backpressure, batch
// edge policies, dedup window semantics, reply routing, bounded memory under
// overload, and end-to-end commit over a simulated cluster.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/app_node.h"
#include "ingress/front_end.h"
#include "ingress/load_gen.h"
#include "sim/network.h"

namespace clandag {
namespace {

PendingTx MakeTx(uint32_t client, uint32_t seq, size_t bytes, TimeMicros now) {
  PendingTx tx;
  tx.tx.id = PackRequestId(client, seq);
  tx.tx.created_at = now;
  tx.tx.data.assign(bytes, 0xab);
  tx.charged_bytes = bytes;
  return tx;
}

// ---- Batcher edge policies ----

TEST(Batcher, EmptyBatchNeverClosesOnDeadline) {
  BatcherOptions options;
  options.max_batch_wait = Millis(10);
  Batcher batcher(options);
  batcher.CloseExpired(Seconds(100));
  EXPECT_EQ(batcher.ClosedCount(), 0u);
  EXPECT_FALSE(batcher.PopClosed(Seconds(200)).has_value());
}

TEST(Batcher, ClosesOnDeadlineAfterFirstAdd) {
  BatcherOptions options;
  options.max_batch_wait = Millis(10);
  Batcher batcher(options);
  ASSERT_TRUE(batcher.Add(MakeTx(1, 0, 100, Millis(1)), Millis(1)));
  EXPECT_FALSE(batcher.PopClosed(Millis(5)).has_value());  // Deadline not hit.
  auto batch = batcher.PopClosed(Millis(12));
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->txs.size(), 1u);
  EXPECT_EQ(batcher.stats().closed_by_deadline, 1u);
}

TEST(Batcher, ClosesOnSizeBeforeDeadline) {
  BatcherOptions options;
  options.max_batch_bytes = 250;
  options.max_batch_wait = Seconds(10);
  Batcher batcher(options);
  ASSERT_TRUE(batcher.Add(MakeTx(1, 0, 100, 1), 1));
  ASSERT_TRUE(batcher.Add(MakeTx(1, 1, 100, 2), 2));
  ASSERT_TRUE(batcher.Add(MakeTx(1, 2, 100, 3), 3));  // 300 >= 250: closes.
  EXPECT_EQ(batcher.ClosedCount(), 1u);
  EXPECT_EQ(batcher.stats().closed_by_size, 1u);
}

TEST(Batcher, OversizeTxFormsOwnImmediatelyClosedBatch) {
  BatcherOptions options;
  options.max_batch_bytes = 200;
  options.max_batch_wait = Seconds(10);
  Batcher batcher(options);
  ASSERT_TRUE(batcher.Add(MakeTx(1, 0, 50, 1), 1));
  // A single transaction over max_batch_bytes must still ship: the open
  // batch flushes first, then the oversize tx closes alone.
  ASSERT_TRUE(batcher.Add(MakeTx(2, 0, 500, 2), 2));
  EXPECT_EQ(batcher.ClosedCount(), 2u);
  EXPECT_EQ(batcher.stats().closed_oversize, 1u);
  auto first = batcher.PopClosed(3);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->txs.size(), 1u);
  EXPECT_EQ(first->payload_bytes, 50u);
  auto second = batcher.PopClosed(3);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->payload_bytes, 500u);
}

TEST(Batcher, RefusesWhenClosedQueueFullThenRecovartsAfterPop) {
  BatcherOptions options;
  options.max_batch_bytes = 100;
  options.max_closed_batches = 2;
  Batcher batcher(options);
  ASSERT_TRUE(batcher.Add(MakeTx(1, 0, 100, 1), 1));  // closes batch 1
  ASSERT_TRUE(batcher.Add(MakeTx(1, 1, 100, 2), 2));  // closes batch 2
  // Closed queue is at cap; an Add that would close must be refused.
  EXPECT_FALSE(batcher.Add(MakeTx(1, 2, 100, 3), 3));
  EXPECT_EQ(batcher.stats().refused_full, 1u);
  EXPECT_EQ(batcher.PendingBytes(), 200u);  // Refused tx was not taken.
  ASSERT_TRUE(batcher.PopClosed(4).has_value());
  // Retry after the consumer drained one batch succeeds.
  EXPECT_TRUE(batcher.Add(MakeTx(1, 2, 100, 5), 5));
}

// ---- Dedup window ----

TEST(Dedup, FreshOnceThenDuplicate) {
  DedupFilter dedup(DedupOptions{});
  EXPECT_EQ(dedup.Check(7, 0, 1), DedupVerdict::kFresh);
  dedup.Record(7, 0, 1);
  EXPECT_EQ(dedup.Check(7, 0, 2), DedupVerdict::kDuplicate);
  EXPECT_EQ(dedup.Check(7, 1, 2), DedupVerdict::kFresh);
}

TEST(Dedup, WindowRolloverMarksBelowWindowStale) {
  DedupFilter dedup(DedupOptions{});
  // Record even sequences up to 200; the window slides with max_seq.
  for (uint64_t seq = 0; seq <= 200; seq += 2) {
    dedup.Record(1, seq, 1);
  }
  // Within the 64-wide window: recorded evens are duplicates, skipped odds
  // are still fresh (exactly-once per sequence, not per range).
  EXPECT_EQ(dedup.Check(1, 200, 2), DedupVerdict::kDuplicate);
  EXPECT_EQ(dedup.Check(1, 199, 2), DedupVerdict::kFresh);
  EXPECT_EQ(dedup.Check(1, 138, 2), DedupVerdict::kDuplicate);
  // Below the window's reach the filter fails closed: it cannot prove the
  // sequence was not recorded, so it reports stale (treated as duplicate).
  EXPECT_EQ(dedup.Check(1, 136, 2), DedupVerdict::kStale);
  EXPECT_EQ(dedup.Check(1, 3, 2), DedupVerdict::kStale);
}

TEST(Dedup, TableFullOfActiveClientsFailsClosed) {
  DedupOptions options;
  options.max_tracked_clients = 2;
  options.idle_eviction = Seconds(1000);
  DedupFilter dedup(options);
  dedup.Record(1, 0, 1);
  dedup.Record(2, 0, 1);
  EXPECT_EQ(dedup.Check(3, 0, 2), DedupVerdict::kUntracked);
  EXPECT_EQ(dedup.TrackedClients(), 2u);
}

TEST(Dedup, IdleClientsEvictedUnderPressure) {
  DedupOptions options;
  options.max_tracked_clients = 2;
  options.idle_eviction = Millis(10);
  DedupFilter dedup(options);
  dedup.Record(1, 0, 0);
  dedup.Record(2, 0, 0);
  // Both entries idle long past the threshold: client 3 evicts and fits.
  EXPECT_EQ(dedup.Check(3, 0, Seconds(1)), DedupVerdict::kFresh);
  dedup.Record(3, 0, Seconds(1));
  EXPECT_LE(dedup.TrackedClients(), 2u);
  EXPECT_GE(dedup.stats().clients_evicted, 1u);
}

// ---- Admission ----

TEST(Admission, RateRejectThenRetryAfterRefillAdmits) {
  AdmissionOptions options;
  options.tokens_per_sec = 10.0;
  options.bucket_burst = 2.0;
  AdmissionController admission(options);
  EXPECT_EQ(admission.Admit(1, 10, 0).verdict, AdmitVerdict::kAdmit);
  EXPECT_EQ(admission.Admit(1, 10, 0).verdict, AdmitVerdict::kAdmit);
  const AdmitDecision rejected = admission.Admit(1, 10, 0);
  EXPECT_EQ(rejected.verdict, AdmitVerdict::kRejectRate);
  EXPECT_GT(rejected.retry_after, 0);
  // Honoring the hint succeeds: one token refills in 100ms at 10/s.
  EXPECT_EQ(admission.Admit(1, 10, rejected.retry_after).verdict, AdmitVerdict::kAdmit);
}

TEST(Admission, ByteBudgetRejectsUntilReleased) {
  AdmissionOptions options;
  options.global_byte_budget = 100;
  options.bucket_burst = 100.0;
  AdmissionController admission(options);
  EXPECT_EQ(admission.Admit(1, 60, 0).verdict, AdmitVerdict::kAdmit);
  EXPECT_EQ(admission.Admit(2, 60, 0).verdict, AdmitVerdict::kRejectCapacity);
  admission.Release(60);
  EXPECT_EQ(admission.Admit(2, 60, 0).verdict, AdmitVerdict::kAdmit);
  EXPECT_EQ(admission.InFlightBytes(), 60u);
}

// ---- ClientReplyCollector bounded-memory regression ----

// Before the cap, the collector retained every (round, proposer) key it
// ever saw; 10k requests through a long-lived node leaked 10k entries.
TEST(ClientReplyCollector, TenThousandRequestsStayUnderCap) {
  ClientReplyCollector collector(/*clan_quorum=*/2);
  for (Round round = 1; round <= 10000; ++round) {
    ExecutionReceipt receipt;
    receipt.round = round;
    receipt.proposer = 0;
    receipt.state_digest = Digest::Of(ToBytes("s"));
    collector.AddReply(1, receipt);
    const bool confirmed = collector.AddReply(2, receipt).has_value();
    EXPECT_TRUE(confirmed) << "round " << round;
    EXPECT_LE(collector.TrackedCount(), kMaxTrackedRequests);
  }
  EXPECT_EQ(collector.ConfirmedCount(), 10000u);
  // Confirmed entries were displaced without ever touching a pending one.
  EXPECT_EQ(collector.EvictedPending(), 0u);
}

TEST(ClientReplyCollector, PruneBelowDropsStaleRequests) {
  ClientReplyCollector collector(/*clan_quorum=*/2);
  for (Round round = 1; round <= 10; ++round) {
    ExecutionReceipt receipt;
    receipt.round = round;
    receipt.proposer = 3;
    collector.AddReply(1, receipt);
  }
  EXPECT_EQ(collector.TrackedCount(), 10u);
  collector.PruneBelow(8);
  EXPECT_EQ(collector.TrackedCount(), 3u);
}

// ---- IngressFrontEnd pipeline ----

struct ReplyLog {
  std::vector<ClientReplyMsg> replies;
  IngressFrontEnd::ReplyFn Fn() {
    return [this](uint64_t, const ClientReplyMsg& reply) { replies.push_back(reply); };
  }
  size_t CountOf(ClientReplyStatus status) const {
    size_t n = 0;
    for (const auto& r : replies) {
      n += r.status == status ? 1 : 0;
    }
    return n;
  }
};

Bytes Frame(uint32_t client, uint32_t seq, size_t payload = 64) {
  ClientRequestMsg msg;
  msg.client_id = client;
  msg.client_seq = seq;
  msg.payload.assign(payload, 0x5a);
  return msg.Encode();
}

IngressOptions SmallIngress() {
  IngressOptions options;
  options.admission.bucket_burst = 1e9;  // Rate limiting off unless a test wants it.
  options.admission.tokens_per_sec = 1e9;
  options.batcher.max_batch_bytes = 4096;
  options.batcher.max_batch_wait = Millis(5);
  return options;
}

TEST(IngressFrontEnd, CommitsThroughQuorumReceipts) {
  ReplyLog log;
  IngressFrontEnd fe(/*self=*/0, /*clan_quorum=*/2, SmallIngress(), log.Fn());
  fe.SubmitRaw(Frame(10, 0), Millis(1));
  fe.SubmitRaw(Frame(11, 0), Millis(1));
  auto block = fe.NextBlock(5, Millis(10));  // Deadline passed: batch ships.
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->tx_count, 2u);
  EXPECT_EQ(block->proposer, 0u);

  ExecutionReceipt receipt;
  receipt.round = 5;
  receipt.proposer = 0;
  receipt.txs_executed = 2;
  receipt.state_digest = Digest::Of(ToBytes("state"));
  fe.OnExecutorReceipt(0, receipt, Millis(12));
  EXPECT_EQ(log.CountOf(ClientReplyStatus::kCommitted), 0u);  // 1 of 2 votes.
  fe.OnExecutorReceipt(1, receipt, Millis(13));
  EXPECT_EQ(log.CountOf(ClientReplyStatus::kCommitted), 2u);
  for (const auto& reply : log.replies) {
    EXPECT_EQ(reply.state_digest, receipt.state_digest);
    EXPECT_EQ(reply.round, 5u);
  }
  // Admission bytes for the confirmed batch were released.
  EXPECT_EQ(fe.PendingBytes(), 0u);
}

TEST(IngressFrontEnd, MalformedFrameCountedNotCrashed) {
  ReplyLog log;
  IngressFrontEnd fe(0, 1, SmallIngress(), log.Fn());
  fe.SubmitRaw(ToBytes("not a frame"), 1);
  EXPECT_EQ(fe.stats().malformed, 1u);
  EXPECT_EQ(fe.stats().admitted, 0u);
}

TEST(IngressFrontEnd, DuplicateSubmissionAnsweredWithoutBatching) {
  ReplyLog log;
  IngressFrontEnd fe(0, 1, SmallIngress(), log.Fn());
  fe.SubmitRaw(Frame(3, 7), 1);
  fe.SubmitRaw(Frame(3, 7), 2);  // Same (client, seq): screened by dedup.
  EXPECT_EQ(fe.stats().admitted, 1u);
  EXPECT_EQ(fe.stats().duplicates, 1u);
  EXPECT_EQ(log.CountOf(ClientReplyStatus::kDuplicate), 1u);
}

TEST(IngressFrontEnd, BackpressureRejectsThenRetrySucceeds) {
  IngressOptions options = SmallIngress();
  options.admission.global_byte_budget = 200;
  ReplyLog log;
  IngressFrontEnd fe(0, 1, options, log.Fn());
  fe.SubmitRaw(Frame(1, 0, 120), Millis(1));
  fe.SubmitRaw(Frame(2, 0, 120), Millis(1));  // Budget full: rejected.
  EXPECT_EQ(log.CountOf(ClientReplyStatus::kRejectedCapacity), 1u);
  const ClientReplyMsg& rejection = log.replies.back();
  EXPECT_GT(rejection.retry_after, 0);

  // Drain: propose and confirm the first batch, releasing its bytes.
  auto block = fe.NextBlock(1, Millis(10));
  ASSERT_TRUE(block.has_value());
  ExecutionReceipt receipt;
  receipt.round = 1;
  receipt.proposer = 0;
  fe.OnExecutorReceipt(0, receipt, Millis(11));

  // The rejected client retries the SAME sequence and now gets through.
  fe.SubmitRaw(Frame(2, 0, 120), Millis(12));
  EXPECT_EQ(fe.stats().admitted, 2u);
  EXPECT_EQ(fe.stats().duplicates, 0u);  // Rejection never touched the window.
}

TEST(IngressFrontEnd, ExpiredBatchRepliesAndRetryIsScreened) {
  IngressOptions options = SmallIngress();
  options.batch_expiry = Millis(100);
  ReplyLog log;
  IngressFrontEnd fe(0, 2, options, log.Fn());
  fe.SubmitRaw(Frame(9, 4), Millis(1));
  ASSERT_TRUE(fe.NextBlock(1, Millis(10)).has_value());
  // No receipts arrive (e.g. the node is partitioned from its clan); the
  // batch expires and the client is told the outcome is unknown.
  fe.SubmitRaw(Frame(50, 0), Millis(200));  // Any activity runs the expiry sweep.
  EXPECT_EQ(log.CountOf(ClientReplyStatus::kExpired), 1u);
  EXPECT_EQ(fe.PendingBytes(), Frame(50, 0).size());  // Expired bytes released.

  // The client retries (client 9, seq 4): the dedup window still remembers
  // the sequence, so the retry cannot be batched or executed twice.
  fe.SubmitRaw(Frame(9, 4), Millis(201));
  EXPECT_EQ(log.CountOf(ClientReplyStatus::kDuplicate), 1u);
}

// The headline bound: at 2x the drain rate, ingress memory stays capped by
// the byte budget + bounded tables, and goodput degrades gracefully
// (rejections, not growth).
TEST(IngressFrontEnd, MemoryBoundedAtTwiceSaturation) {
  IngressOptions options = SmallIngress();
  options.admission.global_byte_budget = 64 << 10;
  options.batcher.max_batch_bytes = 4 << 10;
  ReplyLog log;
  IngressFrontEnd fe(0, 1, options, log.Fn());

  uint64_t submitted_bytes = 0;
  Round round = 1;
  TimeMicros now = 0;
  uint32_t seq = 0;
  for (int step = 0; step < 2000; ++step) {
    now += Millis(1);
    // Offered load: 8 KiB/ms across 8 clients.
    for (int i = 0; i < 8; ++i) {
      const Bytes frame = Frame(i, seq, 1024);
      submitted_bytes += frame.size();
      fe.SubmitRaw(frame, now);
    }
    ++seq;
    // Drain capacity: one 4 KiB block per ms — half the offered load.
    if (auto block = fe.NextBlock(round, now); block.has_value()) {
      ExecutionReceipt receipt;
      receipt.round = round;
      receipt.proposer = 0;
      fe.OnExecutorReceipt(0, receipt, now);
      ++round;
    }
    ASSERT_LE(fe.PendingBytes(), options.admission.global_byte_budget)
        << "ingress exceeded its byte budget at step " << step;
  }
  // ~16 MiB were offered; the budget held throughout and the excess was
  // explicitly rejected, not buffered.
  EXPECT_GT(submitted_bytes, uint64_t{15} << 20);
  EXPECT_GT(fe.stats().rejected_capacity, 0u);
  EXPECT_GT(fe.stats().txs_committed, 0u);
  EXPECT_LE(fe.admission().TrackedClients(), options.admission.max_tracked_clients);
  EXPECT_LE(fe.dedup().TrackedClients(), options.dedup.max_tracked_clients);
  EXPECT_LE(fe.batcher().ClosedCount(), options.batcher.max_closed_batches);
  EXPECT_LE(fe.router().PendingBatches(), options.max_pending_batches);
}

// ---- OpenLoopLoadGen ----

TEST(LoadGen, SameSeedSameTimelineIsBitIdentical) {
  LoadGenOptions options;
  options.seed = 42;
  options.num_clients = 1000;
  options.offered_load_tps = 5000;
  OpenLoopLoadGen a(options, 0);
  OpenLoopLoadGen b(options, 0);
  for (TimeMicros now = Millis(1); now <= Millis(50); now += Millis(1)) {
    EXPECT_EQ(a.Poll(now), b.Poll(now));
  }
  EXPECT_EQ(a.stats().fresh_sent, b.stats().fresh_sent);
  EXPECT_GT(a.stats().fresh_sent, 100u);
}

TEST(LoadGen, ZipfSkewConcentratesOnLowRanks) {
  LoadGenOptions options;
  options.seed = 7;
  options.num_clients = 10000;
  options.offered_load_tps = 100000;
  options.zipf_skew = 3.0;
  options.dup_probe_prob = 0;
  options.burst_prob = 0;
  OpenLoopLoadGen gen(options, 0);
  size_t low_rank = 0;
  size_t total = 0;
  for (TimeMicros now = Millis(1); now <= Millis(100); now += Millis(1)) {
    for (const Bytes& frame : gen.Poll(now)) {
      auto msg = ClientRequestMsg::Decode(frame);
      ASSERT_TRUE(msg.has_value());
      ++total;
      low_rank += msg->client_id < options.num_clients / 10 ? 1 : 0;
    }
  }
  ASSERT_GT(total, 1000u);
  // With skew 3, u^3 < 0.1 for ~46% of draws; uniform would give 10%.
  EXPECT_GT(static_cast<double>(low_rank) / total, 0.3);
}

TEST(LoadGen, RetriesExpiredRequestWithSameSequence) {
  LoadGenOptions options;
  options.seed = 3;
  options.offered_load_tps = 1000;
  OpenLoopLoadGen gen(options, 0);
  std::vector<Bytes> frames = gen.Poll(Millis(10));
  ASSERT_FALSE(frames.empty());
  auto original = ClientRequestMsg::Decode(frames[0]);
  ASSERT_TRUE(original.has_value());

  ClientReplyMsg expired;
  expired.client_id = original->client_id;
  expired.client_seq = original->client_seq;
  expired.status = ClientReplyStatus::kExpired;
  gen.OnReply(expired, Millis(20));
  EXPECT_EQ(gen.PendingRetries(), 1u);

  bool resent = false;
  for (const Bytes& frame : gen.Poll(Millis(40))) {
    auto msg = ClientRequestMsg::Decode(frame);
    ASSERT_TRUE(msg.has_value());
    resent |= msg->client_id == original->client_id &&
              msg->client_seq == original->client_seq;
  }
  EXPECT_TRUE(resent);
  EXPECT_EQ(gen.stats().retries_sent, 1u);
}

TEST(LoadGen, GivesUpAfterMaxRetries) {
  LoadGenOptions options;
  options.seed = 5;
  options.offered_load_tps = 100;
  options.max_retries = 2;
  OpenLoopLoadGen gen(options, 0);
  std::vector<Bytes> frames = gen.Poll(Millis(50));
  ASSERT_FALSE(frames.empty());
  auto msg = ClientRequestMsg::Decode(frames[0]);
  ASSERT_TRUE(msg.has_value());
  ClientReplyMsg reject;
  reject.client_id = msg->client_id;
  reject.client_seq = msg->client_seq;
  reject.status = ClientReplyStatus::kRejectedCapacity;
  reject.retry_after = Millis(1);
  gen.OnReply(reject, Millis(50));
  gen.OnReply(reject, Millis(60));
  EXPECT_EQ(gen.PendingRetries(), 2u);
  gen.OnReply(reject, Millis(70));  // Third strike: abandoned.
  EXPECT_EQ(gen.stats().gave_up, 1u);
}

// ---- End to end over the simulated cluster ----

class IngressSimTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kNodes = 4;

  IngressSimTest()
      : keychain_(5, kNodes),
        topology_(ClanTopology::Full(kNodes)),
        network_(scheduler_, LatencyMatrix::Uniform(kNodes, Millis(5)), NetworkConfig{1e9, 0}) {
    for (NodeId id = 0; id < kNodes; ++id) {
      runtimes_.push_back(std::make_unique<SimRuntime>(network_, id));
      AppNodeOptions options;
      options.consensus.num_nodes = kNodes;
      options.consensus.num_faults = 1;
      options.consensus.round_timeout = Millis(500);
      options.enable_ingress = true;
      options.ingress.batcher.max_batch_wait = Millis(20);
      AppNodeCallbacks callbacks;
      callbacks.on_client_reply = [this, id](uint64_t, const ClientReplyMsg& reply) {
        replies_[id].push_back(reply);
      };
      // Full topology: every node executes every block, so every peer's
      // receipt feeds every front end (the sim harness plays the clan
      // gossip role the TCP driver implements with kClientReply frames).
      callbacks.on_receipt = [this, id](const ExecutionReceipt& receipt) {
        for (NodeId peer = 0; peer < kNodes; ++peer) {
          if (peer != id) {
            apps_[peer]->OnExecutorReceipt(id, receipt);
          }
        }
      };
      apps_.push_back(std::make_unique<AppNode>(*runtimes_[id], keychain_, topology_, options,
                                                std::move(callbacks)));
      network_.RegisterHandler(id, apps_[id].get());
    }
  }

  Scheduler scheduler_;
  Keychain keychain_;
  ClanTopology topology_;
  SimNetwork network_;
  std::vector<std::unique_ptr<SimRuntime>> runtimes_;
  std::vector<std::unique_ptr<AppNode>> apps_;
  std::vector<ClientReplyMsg> replies_[kNodes];
};

TEST_F(IngressSimTest, ClientRequestsCommitWithQuorumReceipts) {
  for (auto& app : apps_) {
    app->Start();
  }
  // Ten clients submit one request each to node 0.
  scheduler_.ScheduleCallbackAt(Millis(1), [this] {
    for (uint32_t c = 0; c < 10; ++c) {
      ClientRequestMsg msg;
      msg.client_id = c;
      msg.client_seq = 0;
      msg.payload = EncodeTransfer(1, 2, 1);
      apps_[0]->SubmitClientRequest(msg.Encode());
    }
  });
  scheduler_.RunUntil(Seconds(3));

  size_t committed = 0;
  std::set<uint64_t> seen;
  for (const auto& reply : replies_[0]) {
    if (reply.status == ClientReplyStatus::kCommitted) {
      ++committed;
      // Exactly one commit per (client, seq).
      EXPECT_TRUE(seen.insert(PackRequestId(reply.client_id, reply.client_seq)).second);
    }
  }
  EXPECT_EQ(committed, 10u);
  // All nodes executed the same transactions exactly once.
  for (NodeId id = 0; id < kNodes; ++id) {
    EXPECT_EQ(apps_[id]->execution().ExecutedTxs(), 10u) << "node " << id;
  }
}

}  // namespace
}  // namespace clandag
