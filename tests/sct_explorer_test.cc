// Explorer harness tests: determinism (same seed ⇒ identical trace), DFS
// exhaustiveness, and the two seeded falsifiability fixtures required by
// ISSUE 8 — the PR 2 Send-vs-Stop race shape and a missed-notify bug —
// each of which the explorer must find within 1000 schedules.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/thread.h"
#include "sct_test_util.h"
#include "testing/sct/explore.h"
#include "testing/sct/scheduler.h"

namespace clandag {
namespace {

using sct::ExploreOptions;
using sct::Strategy;
using sct_test::BaseSeed;

#ifdef CLANDAG_SCT
// One contended-mutex schedule under a given seed; returns its full trace.
std::string TraceForSeed(uint64_t seed) {
  sct::ScheduleOptions so;
  so.strategy = Strategy::kRandomWalk;
  so.seed = seed;
  sct::Scheduler sched(so, nullptr);
  sched.RegisterMain();
  {
    Mutex mu("trace.mu");
    int x = 0;
    Thread a("a", [&] {
      MutexLock lock(mu);
      ++x;
    });
    Thread b("b", [&] {
      MutexLock lock(mu);
      ++x;
    });
    a.join();
    b.join();
    {
      MutexLock lock(mu);
      SCT_ASSERT(x == 2);
    }
  }
  sched.FinishMain();
  EXPECT_FALSE(sched.failed()) << sched.failure_message();
  return sched.FormatTrace();
}
#endif  // CLANDAG_SCT

TEST(SctExplorer, SameSeedYieldsIdenticalTrace) {
  SCT_REQUIRE_BUILD();
#ifdef CLANDAG_SCT
  for (uint64_t seed : {7u, 42u, 1337u}) {
    EXPECT_EQ(TraceForSeed(seed), TraceForSeed(seed)) << "seed " << seed;
  }
  // Different seeds must actually explore different schedules (if every seed
  // produced the same trace the strategy would be a constant, not a search).
  const std::string base = TraceForSeed(7);
  bool any_different = false;
  for (uint64_t seed = 8; seed < 24 && !any_different; ++seed) {
    any_different = TraceForSeed(seed) != base;
  }
  EXPECT_TRUE(any_different);
#endif
}

TEST(SctExplorer, DfsExhaustsTinyCaseAndSeesBothOrders) {
  SCT_REQUIRE_BUILD();
  std::set<int> first_finishers;
  auto result = sct::Explore(
      {.strategy = Strategy::kDfs, .schedules = 5000},
      [&] {
        Mutex mu("dfs.mu");
        int finished = 0;
        int first = 0;
        Thread a("a", [&] {
          MutexLock lock(mu);
          if (++finished == 1) {
            first = 1;
          }
        });
        {
          MutexLock lock(mu);
          if (++finished == 1) {
            first = 2;
          }
        }
        a.join();
        first_finishers.insert(first);
      });
  EXPECT_TRUE(result.dfs_exhausted)
      << "two-thread/one-mutex space not exhausted in " << result.schedules_run
      << " schedules";
  EXPECT_GT(result.schedules_run, 1u);
  EXPECT_EQ(result.failures, 0u) << result.first_failure_trace;
  // Exhaustive enumeration must have covered both completion orders.
  EXPECT_TRUE(first_finishers.count(1) == 1 && first_finishers.count(2) == 1);
}

// -- Falsifiability fixture 1: the PR 2 Send-vs-Stop race shape -------------
//
// Stop() clears `running_` under the lock but closes the descriptor OUTSIDE
// it, so a Send() that saw running_ == true can reach a closed fd — exactly
// the TCP transport bug PR 2's annotations caught statically. Only
// meaningful under SCT: the scheduler serializes all accesses, so the
// unsynchronized fd flag is not a real data race here.
class RacyPort {
 public:
  void Stop() {
    {
      MutexLock lock(mu_);
      running_ = false;
    }
    // BUG (intentional): fd teardown outside the lock that Send() checks
    // under; the fix that shipped moves descriptor lifetime behind the
    // running_ flag's lock (or defers the close to after the loop join).
    fd_open_ = false;
  }

  void Send() {
    bool go;
    {
      MutexLock lock(mu_);
      go = running_;
    }
    sct::SchedulePoint();  // Check-to-use window.
    if (go) {
      SCT_ASSERT(fd_open_);  // "write() on a closed fd"
    }
  }

 private:
  Mutex mu_{"fixture.racyport"};
  bool running_ CLANDAG_GUARDED_BY(mu_) = true;
  bool fd_open_ = true;
};

TEST(SctFalsifiability, FindsSendVsStopRaceWithinBudget) {
  SCT_REQUIRE_BUILD();
  for (Strategy strategy :
       {Strategy::kRandomWalk, Strategy::kPct, Strategy::kDfs}) {
    auto result = sct::Explore(
        {.strategy = strategy, .seed = BaseSeed(), .schedules = 1000,
         .quiet = true},
        [] {
          RacyPort port;
          Thread sender("sender", [&] { port.Send(); });
          port.Stop();
          sender.join();
        });
    EXPECT_TRUE(result.found())
        << sct::StrategyName(strategy)
        << " did not find the Send-vs-Stop race in 1000 schedules (base seed "
        << BaseSeed() << ")";
    EXPECT_LT(result.first_failure_schedule, 1000u);
    EXPECT_FALSE(result.first_failure_trace.empty());
  }
}

// -- Falsifiability fixture 2: seeded missed-notify ------------------------
//
// The consumer checks the flag under the lock, RELEASES it, then re-locks
// and waits unconditionally. A notify landing in the release window is lost
// and the consumer blocks forever — the scheduler's all-threads-blocked
// detector reports it as a deadlock and aborts with the schedule trace.
void RunMissedNotifyExploration() {
  sct::Explore({.strategy = Strategy::kDfs, .schedules = 1000, .quiet = true},
               [] {
                 Mutex mu("fixture.missednotify");
                 CondVar cv;
                 bool ready = false;
                 Thread producer("producer", [&] {
                   MutexLock lock(mu);
                   ready = true;
                   cv.NotifyOne();
                 });
                 bool need_wait;
                 {
                   MutexLock lock(mu);
                   need_wait = !ready;
                 }
                 if (need_wait) {
                   // BUG (intentional): no re-check loop after re-acquiring;
                   // the while(!ready) shape — which clandag-cv-wait-loop
                   // enforces statically — would be immune.
                   MutexLock lock(mu);
                   cv.Wait(mu);  // lint:allow(cv-wait-loop-fixture)
                 }
                 producer.join();
               });
}

TEST(SctFalsifiabilityDeathTest, FindsMissedNotifyDeadlockWithinBudget) {
  SCT_REQUIRE_BUILD();
  EXPECT_DEATH(RunMissedNotifyExploration(), "deadlock");
}

TEST(SctFalsifiability, FixedMissedNotifyShapeIsClean) {
  SCT_REQUIRE_BUILD();
  auto result = sct::Explore(
      {.strategy = Strategy::kDfs, .schedules = 1000}, [] {
        Mutex mu("fixture.notify.fixed");
        CondVar cv;
        bool ready = false;
        Thread producer("producer", [&] {
          MutexLock lock(mu);
          ready = true;
          cv.NotifyOne();
        });
        {
          MutexLock lock(mu);
          while (!ready) {
            cv.Wait(mu);
          }
        }
        producer.join();
      });
  EXPECT_EQ(result.failures, 0u) << result.first_failure_trace;
  EXPECT_TRUE(result.dfs_exhausted);
}

}  // namespace
}  // namespace clandag
