// Whole-network integration tests through the scenario runner: every test
// spins a full simulated cluster (keychain, clan election, bandwidth+latency
// network, n Sailfish nodes) and checks liveness, agreement, and the
// qualitative claims of the paper at small scale.

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "stats/clan_sizing.h"

namespace clandag {
namespace {

ScenarioOptions BaseOptions(uint32_t n) {
  ScenarioOptions opts;
  opts.num_nodes = n;
  opts.txs_per_proposal = 50;
  opts.topology = ScenarioOptions::Topology::kUniform;
  opts.uniform_latency = Millis(10);
  opts.warmup_rounds = 2;
  opts.measure_rounds = 4;
  opts.round_timeout = Seconds(5);
  return opts;
}

struct ModeParam {
  DisseminationMode mode;
  uint32_t n;
  RbcFlavor flavor;
};

class ScenarioModes : public ::testing::TestWithParam<ModeParam> {};

TEST_P(ScenarioModes, CommitsWithAgreement) {
  const ModeParam p = GetParam();
  ScenarioOptions opts = BaseOptions(p.n);
  opts.mode = p.mode;
  opts.clan_size = (p.n / 2) | 1;
  opts.num_clans = 2;
  opts.flavor = p.flavor;
  ScenarioResult r = RunScenario(opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.agreement_ok);
  EXPECT_GT(r.throughput_ktps, 0.0);
  EXPECT_GT(r.mean_latency_ms, 0.0);
  EXPECT_GE(r.last_committed_round, 5);
  EXPECT_GT(r.ordered_vertices_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ScenarioModes,
    ::testing::Values(ModeParam{DisseminationMode::kFull, 4, RbcFlavor::kTwoRound},
                      ModeParam{DisseminationMode::kFull, 7, RbcFlavor::kTwoRound},
                      ModeParam{DisseminationMode::kFull, 13, RbcFlavor::kTwoRound},
                      ModeParam{DisseminationMode::kFull, 7, RbcFlavor::kBracha},
                      ModeParam{DisseminationMode::kSingleClan, 7, RbcFlavor::kTwoRound},
                      ModeParam{DisseminationMode::kSingleClan, 13, RbcFlavor::kTwoRound},
                      ModeParam{DisseminationMode::kSingleClan, 13, RbcFlavor::kBracha},
                      ModeParam{DisseminationMode::kMultiClan, 10, RbcFlavor::kTwoRound},
                      ModeParam{DisseminationMode::kMultiClan, 13, RbcFlavor::kTwoRound},
                      ModeParam{DisseminationMode::kMultiClan, 13, RbcFlavor::kBracha}),
    [](const ::testing::TestParamInfo<ModeParam>& info) {
      std::string name = DisseminationModeName(info.param.mode);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "N" + std::to_string(info.param.n) +
             (info.param.flavor == RbcFlavor::kBracha ? "Bracha" : "TwoRound");
    });

TEST(Scenario, DeterministicAcrossRuns) {
  ScenarioOptions opts = BaseOptions(7);
  opts.seed = 42;
  ScenarioResult a = RunScenario(opts);
  ScenarioResult b = RunScenario(opts);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.committed_txs, b.committed_txs);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(Scenario, CrashFaultsTolerated) {
  ScenarioOptions opts = BaseOptions(7);
  opts.crashed = {1, 4};
  opts.round_timeout = Millis(300);
  ScenarioResult r = RunScenario(opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.agreement_ok);
  EXPECT_GT(r.anchors_skipped, 0u);
}

TEST(Scenario, SingleClanCrashInsideClan) {
  ScenarioOptions opts = BaseOptions(10);
  opts.mode = DisseminationMode::kSingleClan;
  opts.clan_size = 5;
  opts.crashed = {0, 2};  // Clan members 0 and 2 crash (f_c = 2 tolerated).
  opts.round_timeout = Millis(300);
  ScenarioResult r = RunScenario(opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.agreement_ok);
  EXPECT_GT(r.throughput_ktps, 0.0);
}

TEST(Scenario, GcpTopologyLatencyIsGeoScale) {
  ScenarioOptions opts = BaseOptions(10);
  opts.topology = ScenarioOptions::Topology::kGcpGeo;
  ScenarioResult r = RunScenario(opts);
  ASSERT_TRUE(r.ok) << r.error;
  // Two RBC rounds across continents: hundreds of milliseconds.
  EXPECT_GT(r.mean_latency_ms, 150.0);
  EXPECT_LT(r.mean_latency_ms, 2000.0);
}

TEST(Scenario, CostModelIncreasesLatency) {
  ScenarioOptions base = BaseOptions(10);
  ScenarioResult no_cost = RunScenario(base);
  ScenarioOptions with_cost = base;
  with_cost.cost.enabled = true;
  with_cost.cost.per_message = 200;  // Exaggerated for a visible effect.
  ScenarioResult costed = RunScenario(with_cost);
  ASSERT_TRUE(no_cost.ok && costed.ok);
  EXPECT_GT(costed.mean_latency_ms, no_cost.mean_latency_ms);
}

TEST(Scenario, CertSuppressionStillCommits) {
  ScenarioOptions opts = BaseOptions(7);
  opts.multicast_cert = false;
  ScenarioResult r = RunScenario(opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.agreement_ok);
}

TEST(Scenario, VerifySignaturesOffMatchesOn) {
  // The skip-verification fast path must not change protocol behaviour in
  // fault-free runs.
  ScenarioOptions opts = BaseOptions(7);
  ScenarioResult on = RunScenario(opts);
  opts.verify_signatures = false;
  ScenarioResult off = RunScenario(opts);
  ASSERT_TRUE(on.ok && off.ok);
  EXPECT_EQ(on.committed_txs, off.committed_txs);
  EXPECT_DOUBLE_EQ(on.mean_latency_ms, off.mean_latency_ms);
}

TEST(Scenario, RandomClanElectionWorks) {
  ScenarioOptions opts = BaseOptions(10);
  opts.mode = DisseminationMode::kSingleClan;
  opts.clan_size = 5;
  opts.random_clans = true;
  opts.seed = 9;
  ScenarioResult r = RunScenario(opts);
  ASSERT_TRUE(r.ok) << r.error;
}

TEST(Scenario, RandomMultiClanElectionWorks) {
  ScenarioOptions opts = BaseOptions(12);
  opts.mode = DisseminationMode::kMultiClan;
  opts.num_clans = 3;
  opts.random_clans = true;
  ScenarioResult r = RunScenario(opts);
  ASSERT_TRUE(r.ok) << r.error;
}

// The paper's central claim at miniature scale: with a bandwidth-limited
// uplink and large proposals, restricting block dissemination to a clan
// yields higher throughput than full replication.
TEST(Scenario, SingleClanBeatsFullUnderBandwidthPressure) {
  ScenarioOptions opts = BaseOptions(13);
  opts.txs_per_proposal = 2000;
  opts.uplink_bytes_per_sec = 50e6;  // Tight uplink to surface the effect.
  opts.measure_rounds = 4;

  ScenarioOptions full = opts;
  full.mode = DisseminationMode::kFull;
  ScenarioOptions clan = opts;
  clan.mode = DisseminationMode::kSingleClan;
  clan.clan_size = 7;

  ScenarioResult full_result = RunScenario(full);
  ScenarioResult clan_result = RunScenario(clan);
  ASSERT_TRUE(full_result.ok) << full_result.error;
  ASSERT_TRUE(clan_result.ok) << clan_result.error;
  // 13 proposers replicating to 13 vs 7 proposers replicating to 7: the
  // clan variant moves fewer bytes per committed transaction and should win
  // on throughput despite fewer proposers.
  EXPECT_GT(clan_result.throughput_ktps, full_result.throughput_ktps);
}

// Multi-clan halves every proposer's recipient set; with all n proposing it
// should beat single-clan at the same per-proposal load.
TEST(Scenario, MultiClanBeatsSingleClanUnderBandwidthPressure) {
  ScenarioOptions opts = BaseOptions(12);
  opts.txs_per_proposal = 2000;
  opts.uplink_bytes_per_sec = 50e6;
  opts.measure_rounds = 4;

  ScenarioOptions single = opts;
  single.mode = DisseminationMode::kSingleClan;
  single.clan_size = 6;
  ScenarioOptions multi = opts;
  multi.mode = DisseminationMode::kMultiClan;
  multi.num_clans = 2;

  ScenarioResult single_result = RunScenario(single);
  ScenarioResult multi_result = RunScenario(multi);
  ASSERT_TRUE(single_result.ok) << single_result.error;
  ASSERT_TRUE(multi_result.ok) << multi_result.error;
  EXPECT_GT(multi_result.throughput_ktps, single_result.throughput_ktps);
}

TEST(Scenario, TopologyForReportsModes) {
  ScenarioOptions opts = BaseOptions(10);
  opts.mode = DisseminationMode::kSingleClan;
  opts.clan_size = 0;  // Auto-size from mu.
  opts.clan_mu = 10.0;
  ClanTopology t = TopologyFor(opts);
  EXPECT_EQ(t.mode(), DisseminationMode::kSingleClan);
  EXPECT_GE(t.Clan(0).size(), 1u);
  EXPECT_LE(t.Clan(0).size(), 10u);
}

}  // namespace
}  // namespace clandag
