#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/hex.h"
#include "common/rng.h"

namespace clandag {
namespace {

TEST(Bytes, ToBytesRoundTrip) {
  Bytes b = ToBytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(ToString(b), "hello");
}

TEST(Bytes, AppendConcatenates) {
  Bytes a = ToBytes("foo");
  Append(a, ToBytes("bar"));
  EXPECT_EQ(ToString(a), "foobar");
}

TEST(Hex, EncodeKnown) {
  Bytes b = {0x00, 0x0f, 0xa5, 0xff};
  EXPECT_EQ(HexEncode(b), "000fa5ff");
}

TEST(Hex, DecodeKnown) {
  auto decoded = HexDecode("000fa5ff");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (Bytes{0x00, 0x0f, 0xa5, 0xff}));
}

TEST(Hex, DecodeUpperCase) {
  auto decoded = HexDecode("A5FF");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (Bytes{0xa5, 0xff}));
}

TEST(Hex, DecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").has_value());
}

TEST(Hex, DecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").has_value());
}

TEST(Codec, FixedWidthRoundTrip) {
  Writer w;
  w.U8(0xab);
  w.U16(0xbeef);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.Bool(true);
  Reader r(w.Buffer());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0xbeef);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_TRUE(r.Bool());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(Codec, VarintBoundaries) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 0xffffffffULL,
                     0xffffffffffffffffULL}) {
    Writer w;
    w.Varint(v);
    Reader r(w.Buffer());
    EXPECT_EQ(r.Varint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(Codec, BlobAndStr) {
  Writer w;
  w.Blob(ToBytes("payload"));
  w.Str("name");
  Reader r(w.Buffer());
  EXPECT_EQ(ToString(r.Blob()), "payload");
  EXPECT_EQ(r.Str(), "name");
  EXPECT_TRUE(r.ok());
}

TEST(Codec, EmptyBlob) {
  Writer w;
  w.Blob(Bytes{});
  Reader r(w.Buffer());
  EXPECT_TRUE(r.Blob().empty());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(Codec, UnderflowFlipsOk) {
  Bytes buf = {0x01, 0x02};
  Reader r(buf);
  r.U32();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, UnderflowReturnsZeroes) {
  Bytes buf = {0x01};
  Reader r(buf);
  EXPECT_EQ(r.U64(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Codec, TruncatedBlobFlipsOk) {
  Writer w;
  w.Varint(100);  // Claims 100 bytes; provides none.
  Reader r(w.Buffer());
  EXPECT_TRUE(r.Blob().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Codec, VarintOverflowRejected) {
  // 10 bytes of 0xff encodes more than 64 bits.
  Bytes buf(10, 0xff);
  Reader r(buf);
  r.Varint();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, RawRoundTrip) {
  Writer w;
  uint8_t data[4] = {1, 2, 3, 4};
  w.Raw(data, 4);
  Reader r(w.Buffer());
  uint8_t out[4];
  r.Raw(out, 4);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(0, memcmp(data, out, 4));
}

TEST(Rng, Deterministic) {
  DetRng a(42);
  DetRng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, NextBelowInRange) {
  DetRng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, SampleWithoutReplacement) {
  DetRng rng(3);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) == sample.end());
  EXPECT_LT(sample.back(), 100u);
}

TEST(Rng, ForkIndependentStreams) {
  DetRng base(5);
  DetRng f1 = base.Fork(1);
  DetRng base2(5);
  DetRng f2 = base2.Fork(1);
  EXPECT_EQ(f1.Next(), f2.Next());
}

}  // namespace
}  // namespace clandag
