// Tests of the PoA + leader-BFT baseline (§1 straw-man / §8 comparison):
// good-case liveness, agreement on the committed certificate sequence, and
// the latency separation versus the clan-DAG design.

#include <gtest/gtest.h>

#include <memory>

#include "consensus/poa_baseline.h"
#include "core/scenario.h"
#include "sim/network.h"

namespace clandag {
namespace {

class PoaCluster {
 public:
  PoaCluster(uint32_t n, uint32_t clan_size, uint32_t txs_per_block,
             TimeMicros latency = Millis(10))
      : keychain_(13, n),
        topology_(ClanTopology::SingleClanSpread(n, clan_size)),
        network_(scheduler_, LatencyMatrix::Uniform(n, latency), NetworkConfig{1e9, 0}),
        committed_(n) {
    PoaBftConfig config;
    config.num_nodes = n;
    config.num_faults = (n - 1) / 3;
    config.txs_per_block = txs_per_block;
    config.proposal_interval = Millis(50);
    for (NodeId id = 0; id < n; ++id) {
      runtimes_.push_back(std::make_unique<SimRuntime>(network_, id));
      PoaBftCallbacks callbacks;
      callbacks.on_committed_cert = [this, id](const PoaCert& cert, TimeMicros now) {
        committed_[id].push_back({cert.proposer, cert.batch});
        if (cert.tx_count > 0) {
          latency_sum_ms_ += ToMillis(now - cert.created_at);
          ++latency_samples_;
        }
      };
      nodes_.push_back(std::make_unique<PoaBftNode>(*runtimes_[id], keychain_, topology_,
                                                    config, std::move(callbacks)));
      network_.RegisterHandler(id, nodes_[id].get());
    }
  }

  void Run(TimeMicros duration) {
    for (auto& node : nodes_) {
      node->Start();
    }
    scheduler_.RunUntil(duration);
  }

  PoaBftNode& node(NodeId id) { return *nodes_[id]; }
  const std::vector<std::pair<NodeId, uint64_t>>& CommittedAt(NodeId id) const {
    return committed_[id];
  }
  double MeanLatencyMs() const {
    return latency_samples_ == 0 ? 0.0 : latency_sum_ms_ / latency_samples_;
  }

 private:
  Scheduler scheduler_;
  Keychain keychain_;
  ClanTopology topology_;
  SimNetwork network_;
  std::vector<std::unique_ptr<SimRuntime>> runtimes_;
  std::vector<std::unique_ptr<PoaBftNode>> nodes_;
  std::vector<std::vector<std::pair<NodeId, uint64_t>>> committed_;
  double latency_sum_ms_ = 0;
  uint64_t latency_samples_ = 0;
};

TEST(PoaBaseline, ChainAdvancesAndCommitsCerts) {
  PoaCluster cluster(4, 4, 100);
  cluster.Run(Seconds(3));
  EXPECT_GT(cluster.node(0).CurrentView(), 20u);
  EXPECT_GT(cluster.node(0).CommittedCerts(), 5u);
}

TEST(PoaBaseline, AllNodesCommitSameSequence) {
  PoaCluster cluster(7, 4, 50);
  cluster.Run(Seconds(3));
  const auto& reference = cluster.CommittedAt(0);
  ASSERT_FALSE(reference.empty());
  for (NodeId id = 1; id < 7; ++id) {
    const auto& log = cluster.CommittedAt(id);
    const size_t common = std::min(reference.size(), log.size());
    for (size_t i = 0; i < common; ++i) {
      ASSERT_EQ(log[i], reference[i]) << "node " << id << " pos " << i;
    }
  }
}

TEST(PoaBaseline, OnlyClanProposesBlocks) {
  PoaCluster cluster(7, 4, 50);
  cluster.Run(Seconds(2));
  for (const auto& [proposer, batch] : cluster.CommittedAt(0)) {
    EXPECT_LT(proposer, 4u) << "non-clan proposer committed a batch";
  }
}

// The paper's §1/§8 arithmetic: the sequential PoA pipeline costs ≥ 8δ
// while the clan-DAG design commits in 3δ..5δ. Compare measured
// creation-to-commit latency at equal network delay.
TEST(PoaBaseline, LatencyWorseThanClanDag) {
  const TimeMicros delta = Millis(10);
  PoaCluster poa(7, 4, 50, delta);
  poa.Run(Seconds(3));
  const double poa_latency = poa.MeanLatencyMs();
  ASSERT_GT(poa_latency, 0.0);

  ScenarioOptions dag_opts;
  dag_opts.num_nodes = 7;
  dag_opts.mode = DisseminationMode::kSingleClan;
  dag_opts.clan_size = 4;
  dag_opts.txs_per_proposal = 50;
  dag_opts.topology = ScenarioOptions::Topology::kUniform;
  dag_opts.uniform_latency = delta;
  dag_opts.warmup_rounds = 3;
  dag_opts.measure_rounds = 6;
  ScenarioResult dag = RunScenario(dag_opts);
  ASSERT_TRUE(dag.ok) << dag.error;

  // The DAG pipeline must be strictly faster; with queuing effects the gap
  // in the 8δ-vs-5δ range is conservative, so just require a clear win.
  EXPECT_GT(poa_latency, dag.mean_latency_ms * 1.15)
      << "PoA " << poa_latency << " ms vs clan-DAG " << dag.mean_latency_ms << " ms";
}

}  // namespace
}  // namespace clandag
