#include <gtest/gtest.h>

#include "smr/client.h"
#include "smr/execution.h"
#include "smr/mempool.h"

namespace clandag {
namespace {

// ---- SyntheticWorkload ----

TEST(SyntheticWorkload, ProducesConfiguredBatch) {
  SyntheticWorkload w(SyntheticWorkload::Options{500, 512});
  auto block = w.NextBlock(1, Seconds(1));
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->tx_count, 500u);
  EXPECT_EQ(block->tx_size, 512u);
  EXPECT_TRUE(block->IsSynthetic());
}

TEST(SyntheticWorkload, CreatedAtIsMidpointOfGap) {
  SyntheticWorkload w(SyntheticWorkload::Options{10, 512});
  auto first = w.NextBlock(0, Millis(100));
  EXPECT_EQ(first->created_at, Millis(50));  // Midpoint of [0, 100].
  auto second = w.NextBlock(1, Millis(300));
  EXPECT_EQ(second->created_at, Millis(200));  // Midpoint of [100, 300].
}

TEST(SyntheticWorkload, ZeroTxsMeansNoBlock) {
  SyntheticWorkload w(SyntheticWorkload::Options{0, 512});
  EXPECT_FALSE(w.NextBlock(1, 0).has_value());
}

// ---- Mempool / tx batches ----

TEST(Transaction, SerializeParseRoundTrip) {
  Transaction tx;
  tx.id = 42;
  tx.created_at = 1234;
  tx.data = ToBytes("some data");
  Writer w;
  tx.Serialize(w);
  Reader r(w.Buffer());
  Transaction parsed = Transaction::Parse(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(parsed.id, 42u);
  EXPECT_EQ(parsed.created_at, 1234);
  EXPECT_EQ(parsed.data, tx.data);
}

TEST(TxBatch, EncodeDecodeRoundTrip) {
  std::vector<Transaction> txs;
  for (uint64_t i = 0; i < 10; ++i) {
    txs.push_back(Transaction{i, static_cast<TimeMicros>(i * 10), ToBytes("tx")});
  }
  auto decoded = DecodeTxBatch(EncodeTxBatch(txs));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 10u);
  EXPECT_EQ((*decoded)[7].id, 7u);
}

TEST(TxBatch, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeTxBatch(ToBytes("not a batch")).has_value());
}

TEST(Mempool, DrainsInFifoOrder) {
  Mempool pool(Mempool::Options{3});
  for (uint64_t i = 0; i < 5; ++i) {
    pool.Submit(Transaction{i, 0, {}});
  }
  auto block = pool.NextBlock(1, 100);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->tx_count, 3u);  // Capped at max_txs_per_block.
  EXPECT_EQ(pool.PendingCount(), 2u);
  auto batch = DecodeTxBatch(block->payload);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ((*batch)[0].id, 0u);
  EXPECT_EQ((*batch)[2].id, 2u);
}

TEST(Mempool, EmptyReturnsNoBlock) {
  Mempool pool(Mempool::Options{3});
  EXPECT_FALSE(pool.NextBlock(1, 0).has_value());
}

TEST(Mempool, BlockCreatedAtAveragesTxTimes) {
  Mempool pool(Mempool::Options{10});
  pool.Submit(Transaction{0, 100, {}});
  pool.Submit(Transaction{1, 300, {}});
  auto block = pool.NextBlock(1, 400);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->created_at, 200);
}

// ---- ExecutionEngine ----

TEST(Execution, TransferMovesBalance) {
  ExecutionEngine engine(1000);
  std::vector<Transaction> txs = {{1, 0, EncodeTransfer(1, 2, 250)}};
  BlockInfo block;
  block.proposer = 0;
  block.round = 1;
  block.tx_count = 1;
  block.payload = EncodeTxBatch(txs);
  auto receipt = engine.ExecuteBlock(block);
  EXPECT_EQ(receipt.txs_executed, 1u);
  EXPECT_EQ(engine.BalanceOf(1), 750u);
  EXPECT_EQ(engine.BalanceOf(2), 1250u);
}

TEST(Execution, InsufficientBalanceRejected) {
  ExecutionEngine engine(100);
  std::vector<Transaction> txs = {{1, 0, EncodeTransfer(1, 2, 500)}};
  BlockInfo block;
  block.payload = EncodeTxBatch(txs);
  auto receipt = engine.ExecuteBlock(block);
  EXPECT_EQ(receipt.txs_executed, 0u);
  EXPECT_EQ(engine.RejectedTxs(), 1u);
  EXPECT_EQ(engine.BalanceOf(1), 100u);
}

TEST(Execution, SelfTransferRejected) {
  ExecutionEngine engine(100);
  std::vector<Transaction> txs = {{1, 0, EncodeTransfer(3, 3, 10)}};
  BlockInfo block;
  block.payload = EncodeTxBatch(txs);
  engine.ExecuteBlock(block);
  EXPECT_EQ(engine.RejectedTxs(), 1u);
}

TEST(Execution, OpaqueDataTxExecutes) {
  ExecutionEngine engine;
  std::vector<Transaction> txs = {{1, 0, ToBytes("opaque payload")}};
  BlockInfo block;
  block.payload = EncodeTxBatch(txs);
  auto receipt = engine.ExecuteBlock(block);
  EXPECT_EQ(receipt.txs_executed, 1u);
}

TEST(Execution, DeterministicAcrossReplicas) {
  auto run = [] {
    ExecutionEngine engine(1000);
    for (int b = 0; b < 5; ++b) {
      std::vector<Transaction> txs;
      for (uint64_t i = 0; i < 20; ++i) {
        txs.push_back(Transaction{
            i, 0, EncodeTransfer(static_cast<uint32_t>(i % 7), static_cast<uint32_t>(i % 5),
                                 (i * 37) % 2000)});
      }
      BlockInfo block;
      block.proposer = static_cast<NodeId>(b);
      block.round = static_cast<Round>(b);
      block.payload = EncodeTxBatch(txs);
      engine.ExecuteBlock(block);
    }
    return engine.StateDigest();
  };
  EXPECT_EQ(run(), run());
}

TEST(Execution, DigestChainCoversRejections) {
  // Two replicas disagreeing only in accept/reject must diverge in digest.
  ExecutionEngine rich(10'000);
  ExecutionEngine poor(10);
  std::vector<Transaction> txs = {{1, 0, EncodeTransfer(1, 2, 100)}};
  BlockInfo block;
  block.payload = EncodeTxBatch(txs);
  auto a = rich.ExecuteBlock(block);
  auto b = poor.ExecuteBlock(block);
  EXPECT_NE(a.state_digest, b.state_digest);
}

TEST(Execution, SyntheticBlockCountsTxs) {
  ExecutionEngine engine;
  BlockInfo block;
  block.proposer = 1;
  block.round = 3;
  block.tx_count = 1000;
  block.tx_size = 512;
  auto receipt = engine.ExecuteBlock(block);
  EXPECT_EQ(receipt.txs_executed, 1000u);
  EXPECT_EQ(engine.ExecutedTxs(), 1000u);
}

TEST(Execution, MalformedPayloadDeterministic) {
  ExecutionEngine a;
  ExecutionEngine b;
  BlockInfo block;
  block.payload = ToBytes("garbage");
  EXPECT_EQ(a.ExecuteBlock(block).state_digest, b.ExecuteBlock(block).state_digest);
}

// ---- ClientReplyCollector ----

ExecutionReceipt MakeReceipt(Round round, NodeId proposer, uint32_t executed, uint8_t tag) {
  ExecutionReceipt r;
  r.round = round;
  r.proposer = proposer;
  r.txs_executed = executed;
  r.state_digest = Digest::Of(Bytes{tag});
  return r;
}

TEST(Client, ConfirmsAtClanQuorum) {
  ClientReplyCollector client(3);  // f_c + 1 = 3.
  ExecutionReceipt r = MakeReceipt(1, 0, 10, 1);
  EXPECT_FALSE(client.AddReply(0, r).has_value());
  EXPECT_FALSE(client.AddReply(1, r).has_value());
  auto confirmed = client.AddReply(2, r);
  ASSERT_TRUE(confirmed.has_value());
  EXPECT_TRUE(client.IsConfirmed(1, 0));
  EXPECT_EQ(client.ConfirmedCount(), 1u);
}

TEST(Client, DuplicateExecutorIgnored) {
  ClientReplyCollector client(2);
  ExecutionReceipt r = MakeReceipt(1, 0, 10, 1);
  EXPECT_FALSE(client.AddReply(0, r).has_value());
  EXPECT_FALSE(client.AddReply(0, r).has_value());  // Same executor again.
  EXPECT_FALSE(client.IsConfirmed(1, 0));
}

TEST(Client, InconsistentRepliesDontMix) {
  // f_c Byzantine executors returning a different receipt must not combine
  // with honest ones.
  ClientReplyCollector client(3);
  ExecutionReceipt honest = MakeReceipt(1, 0, 10, 1);
  ExecutionReceipt lying = MakeReceipt(1, 0, 99, 2);
  client.AddReply(0, honest);
  client.AddReply(1, lying);
  client.AddReply(2, lying);
  EXPECT_FALSE(client.IsConfirmed(1, 0));
  auto confirmed = client.AddReply(3, honest);
  EXPECT_FALSE(confirmed.has_value());  // Honest support is still only 2.
  confirmed = client.AddReply(4, honest);
  ASSERT_TRUE(confirmed.has_value());
  EXPECT_EQ(confirmed->txs_executed, 10u);
}

TEST(Client, IndependentRequests) {
  ClientReplyCollector client(2);
  client.AddReply(0, MakeReceipt(1, 0, 5, 1));
  client.AddReply(0, MakeReceipt(2, 0, 6, 2));
  EXPECT_FALSE(client.IsConfirmed(1, 0));
  EXPECT_FALSE(client.IsConfirmed(2, 0));
  client.AddReply(1, MakeReceipt(1, 0, 5, 1));
  EXPECT_TRUE(client.IsConfirmed(1, 0));
  EXPECT_FALSE(client.IsConfirmed(2, 0));
}

}  // namespace
}  // namespace clandag
