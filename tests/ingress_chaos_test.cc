// Ingress under chaos: the full client pipeline (admission, batching,
// dedup, reply routing, open-loop load with retries) driven through seeded
// partition-and-heal and crash/restart plans. Beyond the standard safety and
// liveness oracles, these runs assert the ingress-specific invariant: no
// client request is ever executed in two different blocks, even when batch
// expiry makes clients retry with the same sequence number.

#include <gtest/gtest.h>

#include "fault/chaos.h"
#include "fault/fault_plan.h"

namespace clandag {
namespace {

ChaosOptions IngressChaos() {
  ChaosOptions options;
  options.use_ingress = true;
  options.ingress_load_tps = 400;
  options.ingress_clients_per_node = 500;
  // Shorter than the partition below, so batches stranded on the minority
  // side expire and their clients retry — the path dedup must screen.
  options.ingress_batch_expiry = Seconds(1);
  return options;
}

// 4 nodes, f = 1: a quorum-preserving 3|1 split that heals. The isolated
// node keeps proposing into the void; its batches expire; its clients
// retry; after heal the survivors' history and the retries must reconcile
// to exactly-once execution.
FaultPlan IngressPartitionPlan() {
  FaultPlan plan;
  plan.seed = 11001;
  plan.num_nodes = 4;
  plan.horizon = Seconds(10);
  PartitionFault p;
  p.start = Seconds(2);
  p.heal = Seconds(5);
  p.side = {0, 0, 0, 1};
  plan.partitions.push_back(p);
  return plan;
}

TEST(IngressChaos, PartitionAndHealCommitsWithoutDuplicateExecution) {
  const ChaosReport report = RunChaosPlan(IngressPartitionPlan(), IngressChaos());
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_TRUE(report.safety_ok) << report.error;
  EXPECT_TRUE(report.liveness_ok) << report.error;
  // The pipeline actually carried client traffic end to end...
  EXPECT_GT(report.ingress_committed, 0u);
  // ...the partition actually stranded batches (expiries -> client retries,
  // answered as duplicates by the dedup window)...
  EXPECT_GT(report.injected.partition_drops, 0u);
  EXPECT_GT(report.ingress_expired, 0u);
  EXPECT_GT(report.ingress_duplicate_replies, 0u);
  // ...and not one request landed in two blocks.
  EXPECT_EQ(report.duplicate_executions, 0u);
}

TEST(IngressChaos, CrashRestartKeepsExactlyOnceExecution) {
  FaultPlan plan;
  plan.seed = 11002;
  plan.num_nodes = 4;
  plan.horizon = Seconds(10);
  CrashFault c;
  c.node = 1;
  c.crash_at = Seconds(3);
  c.restart_at = Seconds(6);
  plan.crashes.push_back(c);

  const ChaosReport report = RunChaosPlan(plan, IngressChaos());
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_GT(report.ingress_committed, 0u);
  EXPECT_EQ(report.restarts_recovered, 1u);
  EXPECT_EQ(report.duplicate_executions, 0u);
}

// Determinism: the same seed replays to the same ingress outcome, so a
// failing chaos run is always reproducible.
TEST(IngressChaos, SeedReplayIsDeterministic) {
  ChaosOptions options = IngressChaos();
  options.post_heal_run = Seconds(2);
  const ChaosReport a = RunChaosPlan(IngressPartitionPlan(), options);
  const ChaosReport b = RunChaosPlan(IngressPartitionPlan(), options);
  EXPECT_EQ(a.ingress_committed, b.ingress_committed);
  EXPECT_EQ(a.ingress_expired, b.ingress_expired);
  EXPECT_EQ(a.ingress_rejected, b.ingress_rejected);
  EXPECT_EQ(a.final_committed_round, b.final_committed_round);
  EXPECT_EQ(a.honest_ordered, b.honest_ordered);
}

}  // namespace
}  // namespace clandag
