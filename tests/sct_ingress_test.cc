// SCT tests for the ingress Batcher close/flush path and the log schedule
// point. The Batcher is thread-confined by contract, so it is driven from a
// scheduled SctLoop mailbox thread while a scheduled producer posts Adds and
// the main thread posts CloseExpired/PopClosed — the explorer then decides
// how producer posts interleave with flush posts, and the exactly-once
// property (every admitted tx appears in exactly one popped batch) must
// survive every interleaving.

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.h"
#include "common/mutex.h"
#include "common/thread.h"
#include "ingress/batcher.h"
#include "sct_test_util.h"
#include "testing/sct/explore.h"

namespace clandag {
namespace {

using sct::Strategy;
using sct_test::BaseSeed;
using sct_test::DeepMultiplier;
using sct_test::SctLoop;

PendingTx MakeTx(uint64_t id, size_t bytes) {
  PendingTx tx;
  tx.tx.id = id;
  tx.tx.data.assign(bytes, static_cast<uint8_t>(id));
  tx.charged_bytes = bytes;
  return tx;
}

TEST(SctIngress, BatcherCloseFlushExactlyOnce) {
  SCT_REQUIRE_BUILD();
  for (Strategy strategy : {Strategy::kRandomWalk, Strategy::kPct}) {
    auto result = sct::Explore(
        {.strategy = strategy,
         .seed = BaseSeed(),
         .schedules = 50 * DeepMultiplier()},
        [] {
          // Virtual clock: advanced only by posted closures, so deadline
          // expiry is schedule-driven, not wall-clock-driven.
          BatcherOptions options;
          options.max_batch_bytes = 64;
          options.max_batch_wait = 10;
          options.max_closed_batches = 2;
          Batcher batcher(options);
          TimeMicros now = 0;
          std::vector<uint64_t> popped_ids;
          uint64_t accepted = 0;
          uint64_t refused = 0;
          SctLoop loop;
          // Producer posts Adds (32 bytes each: two per size-closed batch).
          Thread producer("producer", [&] {
            for (uint64_t id = 1; id <= 6; ++id) {
              loop.Post([&, id] {
                if (batcher.Add(MakeTx(id, 32), now)) {
                  ++accepted;
                } else {
                  ++refused;
                }
              });
            }
          });
          // Main interleaves flush/pop posts with the producer's Adds.
          for (int i = 0; i < 4; ++i) {
            loop.Post([&] {
              now += 20;  // Past max_batch_wait: open batch expires.
              batcher.CloseExpired(now);
              while (auto batch = batcher.PopClosed(now)) {
                for (const PendingTx& tx : batch->txs) {
                  popped_ids.push_back(tx.tx.id);
                }
              }
            });
          }
          producer.join();
          // Final drain so every accepted tx resolves.
          loop.Post([&] {
            now += 20;
            batcher.CloseExpired(now);
            while (auto batch = batcher.PopClosed(now)) {
              for (const PendingTx& tx : batch->txs) {
                popped_ids.push_back(tx.tx.id);
              }
            }
            SCT_ASSERT(batcher.PendingBytes() == 0);
            SCT_ASSERT(batcher.ClosedCount() == 0);
            SCT_ASSERT(batcher.OpenCount() == 0);
          });
          loop.Stop();
          // Exactly-once: every accepted tx popped exactly once, none
          // invented, none lost — regardless of the Add/flush interleaving.
          SCT_ASSERT(accepted + refused == 6);
          SCT_ASSERT(popped_ids.size() == accepted);
          std::set<uint64_t> unique(popped_ids.begin(), popped_ids.end());
          SCT_ASSERT(unique.size() == popped_ids.size());
        });
    EXPECT_EQ(result.failures, 0u)
        << sct::StrategyName(strategy) << ": " << result.first_failure_message
        << "\n" << result.first_failure_trace;
  }
}

TEST(SctIngress, LogSchedulePointPerturbsButNeverBreaks) {
  SCT_REQUIRE_BUILD();
  // LogImpl carries an explicit SchedulePoint (the shared stderr stream is a
  // rendezvous the mutex hooks cannot see). Logging must be ENABLED here:
  // the macro's level check gates the LogImpl call, so a suppressed level
  // would skip the schedule point entirely. Two threads logging while
  // contending a counter must stay consistent under every interleaving.
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  auto result = sct::Explore(
      {.strategy = Strategy::kRandomWalk,
       .seed = BaseSeed(),
       .schedules = 30 * DeepMultiplier()},
      [] {
        Mutex mu("sct_test.log.counter");
        int counter = 0;
        auto work = [&] {
          for (int i = 0; i < 2; ++i) {
            CLANDAG_DEBUG("sct log schedule point %d", i);
            MutexLock lock(mu);
            ++counter;
          }
        };
        Thread a("log-a", work);
        work();
        a.join();
        MutexLock lock(mu);
        SCT_ASSERT(counter == 4);
      });
  SetLogLevel(saved);
  EXPECT_EQ(result.failures, 0u)
      << result.first_failure_message << "\n" << result.first_failure_trace;
}

}  // namespace
}  // namespace clandag
