#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "sim/latency.h"
#include "sim/msg_queue.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace clandag {
namespace {

TEST(Scheduler, CallbacksFireInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.ScheduleCallbackAt(30, [&] { order.push_back(3); });
  s.ScheduleCallbackAt(10, [&] { order.push_back(1); });
  s.ScheduleCallbackAt(20, [&] { order.push_back(2); });
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30);
}

TEST(Scheduler, EqualTimesFireInScheduleOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.ScheduleCallbackAt(5, [&order, i] { order.push_back(i); });
  }
  s.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Scheduler, CallbacksCanScheduleMore) {
  Scheduler s;
  int fired = 0;
  s.ScheduleCallbackAt(1, [&] {
    ++fired;
    s.ScheduleCallbackAt(2, [&] { ++fired; });
  });
  s.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RunUntilAdvancesClockWhenIdle) {
  Scheduler s;
  s.RunUntil(1000);
  EXPECT_EQ(s.Now(), 1000);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  bool late_fired = false;
  s.ScheduleCallbackAt(50, [&] {});
  s.ScheduleCallbackAt(150, [&] { late_fired = true; });
  s.RunUntil(100);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(s.Now(), 100);
  s.RunUntil(200);
  EXPECT_TRUE(late_fired);
}

TEST(Scheduler, MessagesInterleaveWithCallbacks) {
  Scheduler s;
  std::vector<std::string> order;
  s.SetMessageSink([&](const MsgEvent& ev) { order.push_back("msg@" + std::to_string(ev.at)); });
  auto payload = std::make_shared<const Bytes>(Bytes{1});
  s.ScheduleMessageAt(10, 0, 1, 7, payload, 1);
  s.ScheduleCallbackAt(5, [&] { order.push_back("cb@5"); });
  s.ScheduleCallbackAt(15, [&] { order.push_back("cb@15"); });
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<std::string>{"cb@5", "msg@10", "cb@15"}));
}

// Property: the calendar queue dequeues exactly like a reference sorted
// multiset under randomized pushes/pops, including far-future (overflow)
// entries and interleaved pops.
TEST(MsgCalendarQueue, MatchesReferenceUnderRandomWorkload) {
  DetRng rng(1234);
  MsgCalendarQueue q;
  std::multimap<std::pair<TimeMicros, uint64_t>, uint32_t> reference;
  TimeMicros now = 0;
  uint64_t seq = 0;
  for (int step = 0; step < 200000; ++step) {
    bool push = reference.empty() || rng.NextBelow(100) < 55;
    if (push) {
      TimeMicros at = now;
      uint64_t kind = rng.NextBelow(100);
      if (kind < 70) {
        at = now + static_cast<TimeMicros>(rng.NextBelow(2000));  // Near.
      } else if (kind < 95) {
        at = now + static_cast<TimeMicros>(rng.NextBelow(2'000'000));  // Mid.
      } else {
        at = now + 20'000'000 + static_cast<TimeMicros>(rng.NextBelow(50'000'000));  // Overflow.
      }
      uint32_t slot = static_cast<uint32_t>(rng.Next());
      q.Push(MsgQueueEntry{at, seq, slot});
      reference.emplace(std::make_pair(at, seq), slot);
      ++seq;
    } else {
      MsgQueueEntry got = q.Pop();
      auto it = reference.begin();
      ASSERT_EQ(got.at, it->first.first) << "step " << step;
      ASSERT_EQ(got.seq, it->first.second);
      ASSERT_EQ(got.slot, it->second);
      now = got.at;
      reference.erase(it);
    }
    ASSERT_EQ(q.size(), reference.size());
  }
  while (!reference.empty()) {
    MsgQueueEntry got = q.Pop();
    auto it = reference.begin();
    ASSERT_EQ(got.seq, it->first.second);
    reference.erase(it);
  }
  EXPECT_TRUE(q.empty());
}

TEST(LatencyMatrix, UniformModel) {
  LatencyMatrix m = LatencyMatrix::Uniform(5, Millis(25));
  EXPECT_EQ(m.OneWay(0, 1), Millis(25));
  EXPECT_EQ(m.OneWay(4, 2), Millis(25));
  EXPECT_EQ(m.OneWay(3, 3), 0);
}

TEST(LatencyMatrix, GcpMatchesTable1) {
  LatencyMatrix m = LatencyMatrix::GcpGeoDistributed(10);
  // Nodes 0 and 5 are both in us-east1; node 1 in us-west1.
  EXPECT_EQ(m.RegionOf(0), m.RegionOf(5));
  // us-east1 -> us-west1 RTT 66.14ms => one way 33.07ms.
  EXPECT_EQ(m.OneWay(0, 1), static_cast<TimeMicros>(66.14 * 1000 / 2));
  // europe-north1 -> australia-southeast1 RTT 295.13 => 147.565ms one way.
  EXPECT_EQ(m.OneWay(2, 4), static_cast<TimeMicros>(295.13 * 1000 / 2));
  // Same region but different nodes: intra-region RTT applies.
  EXPECT_EQ(m.OneWay(0, 5), static_cast<TimeMicros>(0.75 * 1000 / 2));
  EXPECT_EQ(m.OneWay(0, 0), 0);
}

TEST(LatencyMatrix, MeanOneWayPositive) {
  LatencyMatrix m = LatencyMatrix::GcpGeoDistributed(10);
  EXPECT_GT(m.MeanOneWay(), Millis(10));
  EXPECT_LT(m.MeanOneWay(), Millis(200));
}

class NetworkTest : public ::testing::Test {
 protected:
  struct Recorder : MessageHandler {
    std::vector<std::tuple<TimeMicros, NodeId, MsgType>> received;
    Scheduler* scheduler = nullptr;
    void OnMessage(NodeId from, MsgType type, const Bytes& /*payload*/) override {
      received.push_back({scheduler->Now(), from, type});
    }
  };

  NetworkTest()
      : network_(scheduler_, LatencyMatrix::Uniform(3, Millis(10)), NetworkConfig{1e6, 0}) {
    for (int i = 0; i < 3; ++i) {
      recorders_[i].scheduler = &scheduler_;
      network_.RegisterHandler(i, &recorders_[i]);
    }
  }

  void Send(NodeId from, NodeId to, MsgType type, size_t wire) {
    network_.Send(from, to, type, std::make_shared<const Bytes>(Bytes{1}), wire);
  }

  Scheduler scheduler_;
  SimNetwork network_;
  Recorder recorders_[3];
};

TEST_F(NetworkTest, PropagationDelayApplied) {
  // 1 MB/s uplink, zero-overhead config: 1000-byte message = 1 ms serialize.
  Send(0, 1, 7, 1000);
  scheduler_.RunUntilIdle();
  ASSERT_EQ(recorders_[1].received.size(), 1u);
  EXPECT_EQ(std::get<0>(recorders_[1].received[0]), Millis(1) + Millis(10));
}

TEST_F(NetworkTest, UplinkSerializesSequentially) {
  // Two 1000-byte messages from node 0: the second waits for the first.
  Send(0, 1, 1, 1000);
  Send(0, 2, 2, 1000);
  scheduler_.RunUntilIdle();
  ASSERT_EQ(recorders_[1].received.size(), 1u);
  ASSERT_EQ(recorders_[2].received.size(), 1u);
  EXPECT_EQ(std::get<0>(recorders_[1].received[0]), Millis(11));
  EXPECT_EQ(std::get<0>(recorders_[2].received[0]), Millis(12));
}

TEST_F(NetworkTest, SelfSendSkipsUplink) {
  Send(0, 0, 3, 1'000'000);
  scheduler_.RunUntilIdle();
  ASSERT_EQ(recorders_[0].received.size(), 1u);
  EXPECT_EQ(std::get<0>(recorders_[0].received[0]), 0);
}

TEST_F(NetworkTest, CrashedNodeNeitherSendsNorReceives) {
  network_.SetCrashed(1, true);
  Send(0, 1, 1, 10);  // To crashed: dropped at delivery.
  Send(1, 2, 2, 10);  // From crashed: dropped at send.
  scheduler_.RunUntilIdle();
  EXPECT_TRUE(recorders_[1].received.empty());
  EXPECT_TRUE(recorders_[2].received.empty());
}

TEST_F(NetworkTest, CrashDropsInFlightDeliveries) {
  // The message is on the wire (≈11ms of latency) when the receiver dies;
  // the crash check runs at delivery time, so it never lands.
  Send(0, 1, 1, 10);
  scheduler_.ScheduleCallbackAt(Millis(5), [&] { network_.SetCrashed(1, true); });
  scheduler_.RunUntilIdle();
  EXPECT_TRUE(recorders_[1].received.empty());
}

TEST_F(NetworkTest, InFlightMessageLandsAfterRestart) {
  // Crash and restart both happen while the message is still in flight: a
  // message that arrives after the restart is deliverable (it was in the
  // network, not in the dead process's buffers).
  Send(0, 1, 1, 10);
  scheduler_.ScheduleCallbackAt(Millis(2), [&] { network_.SetCrashed(1, true); });
  scheduler_.ScheduleCallbackAt(Millis(5), [&] { network_.SetCrashed(1, false); });
  scheduler_.RunUntilIdle();
  ASSERT_EQ(recorders_[1].received.size(), 1u);
}

TEST_F(NetworkTest, CrashRestartCycleDropsOnlyDownWindowTraffic) {
  // Three messages: pre-crash (delivered), during downtime (dropped at
  // delivery), post-restart (delivered). Sender stays up throughout.
  Send(0, 1, 1, 10);  // Lands ≈11ms, node up.
  scheduler_.ScheduleCallbackAt(Millis(20), [&] { network_.SetCrashed(1, true); });
  scheduler_.ScheduleCallbackAt(Millis(25), [&] { Send(0, 1, 2, 10); });  // Lands while down.
  scheduler_.ScheduleCallbackAt(Millis(50), [&] { network_.SetCrashed(1, false); });
  scheduler_.ScheduleCallbackAt(Millis(60), [&] { Send(0, 1, 3, 10); });  // Lands after restart.
  scheduler_.RunUntilIdle();
  ASSERT_EQ(recorders_[1].received.size(), 2u);
  EXPECT_EQ(std::get<2>(recorders_[1].received[0]), 1);
  EXPECT_EQ(std::get<2>(recorders_[1].received[1]), 3);
}

TEST_F(NetworkTest, RepeatedCrashRestartCyclesStayConsistent) {
  // Several cycles; messages fired every 7ms land (≈10ms later) iff the
  // receiver is up at the delivery instant. Sanity: traffic resumes after
  // every restart, and nothing sent from a down node ever escapes.
  for (int i = 0; i < 10; ++i) {
    scheduler_.ScheduleCallbackAt(Millis(7 * i), [&, i] {
      Send(0, 1, static_cast<MsgType>(i), 10);
      Send(1, 2, static_cast<MsgType>(100 + i), 10);
    });
  }
  scheduler_.ScheduleCallbackAt(Millis(10), [&] { network_.SetCrashed(1, true); });
  scheduler_.ScheduleCallbackAt(Millis(30), [&] { network_.SetCrashed(1, false); });
  scheduler_.ScheduleCallbackAt(Millis(45), [&] { network_.SetCrashed(1, true); });
  scheduler_.ScheduleCallbackAt(Millis(55), [&] { network_.SetCrashed(1, false); });
  scheduler_.RunUntilIdle();
  EXPECT_FALSE(recorders_[1].received.empty());
  // Sends from node 1 during its down windows [10,30) and [45,55) — i.e.
  // i = 2, 3, 4 (t = 14, 21, 28) and i = 7 (t = 49) — were dropped at the
  // source; everything else got through.
  ASSERT_EQ(recorders_[2].received.size(), 6u);
  for (const auto& [at, from, type] : recorders_[2].received) {
    EXPECT_TRUE(type != 102 && type != 103 && type != 104 && type != 107);
  }
  // After the final restart the link works again end-to-end.
  Send(0, 1, 77, 10);
  scheduler_.RunUntilIdle();
  EXPECT_EQ(std::get<2>(recorders_[1].received.back()), 77);
}

TEST_F(NetworkTest, AdversaryCanDelayAndDrop) {
  network_.SetAdversary([](NodeId /*from*/, NodeId to, MsgType, TimeMicros) -> TimeMicros {
    if (to == 2) {
      return kDropMessage;
    }
    return Millis(100);
  });
  Send(0, 1, 1, 1000);
  Send(0, 2, 2, 1000);
  scheduler_.RunUntilIdle();
  ASSERT_EQ(recorders_[1].received.size(), 1u);
  EXPECT_EQ(std::get<0>(recorders_[1].received[0]), Millis(111));
  EXPECT_TRUE(recorders_[2].received.empty());
}

TEST_F(NetworkTest, CpuCostSerializesReceiverProcessing) {
  network_.SetCpuCost([](NodeId, MsgType, size_t) { return Millis(5); });
  Send(0, 1, 1, 1000);  // Arrives at 11ms, processed at 16ms.
  Send(2, 1, 2, 1000);  // Arrives at 11ms, processed at 21ms (CPU busy).
  scheduler_.RunUntilIdle();
  ASSERT_EQ(recorders_[1].received.size(), 2u);
  EXPECT_EQ(std::get<0>(recorders_[1].received[0]), Millis(16));
  EXPECT_EQ(std::get<0>(recorders_[1].received[1]), Millis(21));
}

TEST_F(NetworkTest, TrafficAccounting) {
  Send(0, 1, 1, 500);
  Send(0, 2, 1, 700);
  scheduler_.RunUntilIdle();
  EXPECT_EQ(network_.BytesSentBy(0), 1200u);
  EXPECT_EQ(network_.MessagesSentBy(0), 2u);
  EXPECT_EQ(network_.TotalBytesSent(), 1200u);
}

TEST(SimRuntime, BroadcastReachesAllIncludingSelf) {
  Scheduler scheduler;
  SimNetwork network(scheduler, LatencyMatrix::Uniform(4, Millis(1)), NetworkConfig{1e9, 0});
  struct Counter : MessageHandler {
    int count = 0;
    void OnMessage(NodeId, MsgType, const Bytes&) override { ++count; }
  };
  Counter counters[4];
  for (int i = 0; i < 4; ++i) {
    network.RegisterHandler(i, &counters[i]);
  }
  SimRuntime rt(network, 0);
  rt.Broadcast(9, ToBytes("hello"));
  scheduler.RunUntilIdle();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(counters[i].count, 1) << "node " << i;
  }
}

TEST(SimRuntime, ScheduleRelativeDelay) {
  Scheduler scheduler;
  SimNetwork network(scheduler, LatencyMatrix::Uniform(2, 0), NetworkConfig{});
  SimRuntime rt(network, 0);
  TimeMicros fired_at = -1;
  rt.Schedule(Millis(7), [&] { fired_at = rt.Now(); });
  scheduler.RunUntilIdle();
  EXPECT_EQ(fired_at, Millis(7));
}

}  // namespace
}  // namespace clandag
