// TCP transport hardening tests: the pre-connect buffer (no silent loss to
// peers that are not up yet), partition-and-heal with counter reconciliation,
// dial backoff with peer-health tracking, and — the chaos satellite — the
// Byzantine behaviour suite running over real sockets with the safety oracle
// watching every honest node.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/app_node.h"
#include "core/byzantine.h"
#include "fault/oracles.h"
#include "net/tcp_transport.h"

namespace clandag {
namespace {

struct CountingHandler : MessageHandler {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<NodeId, MsgType>> received;

  void OnMessage(NodeId from, MsgType type, const Bytes& /*payload*/) override {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back({from, type});
    cv.notify_all();
  }

  bool WaitForCount(size_t count, int timeout_ms = 10000) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return received.size() >= count; });
  }
};

uint16_t PickBasePort(int salt) {
  // Distinct from transport_test.cc's 21000 range.
  return static_cast<uint16_t>(24000 + salt * 64 + (getpid() % 50) * 8);
}

TcpConfig MakeConfig(NodeId id, uint32_t n, uint16_t base_port) {
  TcpConfig config;
  config.id = id;
  config.num_nodes = n;
  config.base_port = base_port;
  config.dial_retry = Millis(20);
  config.dial_retry_cap = Millis(200);
  return config;
}

// Sends issued before the peer ever came up must be buffered and flushed on
// connect, not silently dropped (the seed transport dropped them).
TEST(TcpHardening, PreConnectSendsFlushOnFirstConnect) {
  constexpr int kMsgs = 25;
  const uint16_t base_port = PickBasePort(0);
  CountingHandler handlers[2];
  TcpRuntime node0(MakeConfig(0, 2, base_port), &handlers[0]);
  node0.Start();

  // Peer 1 is not even listening yet.
  for (int i = 0; i < kMsgs; ++i) {
    node0.Send(1, static_cast<MsgType>(i), ToBytes("early"));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    const TransportStats s = node0.Stats();
    EXPECT_EQ(s.preconnect_buffered, static_cast<uint64_t>(kMsgs));
    EXPECT_EQ(s.preconnect_flushed, 0u);
    EXPECT_GT(s.dial_failures, 0u);  // It has been retrying.
  }
  EXPECT_GT(node0.HealthOf(1).consecutive_failures, 0u);
  EXPECT_FALSE(node0.HealthOf(1).connected);

  TcpRuntime node1(MakeConfig(1, 2, base_port), &handlers[1]);
  node1.Start();
  ASSERT_TRUE(node0.WaitConnected(Seconds(10)));
  EXPECT_TRUE(handlers[1].WaitForCount(kMsgs));

  const TransportStats s = node0.Stats();
  EXPECT_EQ(s.preconnect_buffered, static_cast<uint64_t>(kMsgs));
  EXPECT_EQ(s.preconnect_flushed, static_cast<uint64_t>(kMsgs));
  EXPECT_EQ(s.preconnect_dropped, 0u);
  EXPECT_TRUE(node0.HealthOf(1).connected);
  EXPECT_EQ(node0.HealthOf(1).consecutive_failures, 0u);
  node0.Stop();
  node1.Stop();
}

// Partition (peer process dies) and heal (it comes back): every frame handed
// to Send() while the link was down is either delivered after the heal or
// shows up in a drop counter — the conservation law, end to end.
TEST(TcpHardening, PartitionHealReconcilesCounters) {
  constexpr int kDownSends = 40;
  const uint16_t base_port = PickBasePort(1);
  CountingHandler h0;
  CountingHandler h1a;
  TcpRuntime node0(MakeConfig(0, 2, base_port), &h0);
  node0.Start();
  auto node1 = std::make_unique<TcpRuntime>(MakeConfig(1, 2, base_port), &h1a);
  node1->Start();
  ASSERT_TRUE(node0.WaitConnected(Seconds(10)));
  node0.Send(1, 1, ToBytes("baseline"));
  ASSERT_TRUE(h1a.WaitForCount(1));

  // Partition: peer 1's process goes away entirely.
  node1->Stop();
  node1.reset();
  // Wait until node 0 noticed the link is down (close or failed redial).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (node0.HealthOf(1).connected && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(node0.HealthOf(1).connected);

  for (int i = 0; i < kDownSends; ++i) {
    node0.Send(1, static_cast<MsgType>(100 + (i % 50)), ToBytes("during partition"));
  }

  // Heal: a fresh incarnation of peer 1 on the same address.
  CountingHandler h1b;
  node1 = std::make_unique<TcpRuntime>(MakeConfig(1, 2, base_port), &h1b);
  node1->Start();
  ASSERT_TRUE(node0.WaitConnected(Seconds(10)));

  const TransportStats s = node0.Stats();
  const uint64_t dropped = s.preconnect_dropped + s.queue_dropped + s.partial_dropped;
  // Everything buffered during the partition that was not dropped arrives.
  const size_t expect_delivered = static_cast<size_t>(kDownSends) - dropped;
  EXPECT_TRUE(h1b.WaitForCount(expect_delivered));
  // Conservation: nothing vanished without a counter.
  EXPECT_EQ(s.preconnect_buffered, s.preconnect_flushed + s.preconnect_dropped);
  node0.Stop();
  node1->Stop();
}

// The pre-connect buffer is bounded: oldest frames are evicted and counted.
TEST(TcpHardening, PreConnectBufferBoundedOldestEvicted) {
  const uint16_t base_port = PickBasePort(2);
  CountingHandler handler;
  TcpConfig config = MakeConfig(0, 2, base_port);
  config.max_preconnect_bytes = 512;  // A handful of frames.
  TcpRuntime node0(config, &handler);
  node0.Start();
  for (int i = 0; i < 100; ++i) {
    node0.Send(1, 7, Bytes(64, 0xaa));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const TransportStats s = node0.Stats();
  EXPECT_EQ(s.preconnect_buffered, 100u);
  EXPECT_GT(s.preconnect_dropped, 0u);
  // Still-buffered remainder fits the bound.
  const uint64_t remaining = s.preconnect_buffered - s.preconnect_flushed - s.preconnect_dropped;
  EXPECT_LE(remaining * 64, 512u + 64u);
  node0.Stop();
}

// Dial retries back off exponentially: over one second against a dead peer,
// a 20ms→200ms capped schedule attempts far fewer dials than flat-20ms would.
TEST(TcpHardening, DialBackoffSlowsRetryStorm) {
  const uint16_t base_port = PickBasePort(3);
  CountingHandler handler;
  TcpRuntime node0(MakeConfig(0, 2, base_port), &handler);
  node0.Start();
  std::this_thread::sleep_for(std::chrono::seconds(1));
  const TransportStats s = node0.Stats();
  EXPECT_GE(s.dial_attempts, 3u);   // It keeps trying...
  EXPECT_LE(s.dial_attempts, 30u);  // ...but nowhere near 1s/20ms = 50 dials.
  EXPECT_GE(node0.HealthOf(1).consecutive_failures, 3u);
  node0.Stop();
}

// Chaos satellite: every Byzantine behaviour running over real TCP sockets,
// one adversary per run, with the safety oracle tapped into every honest
// node's commit stream. Safety must hold on real transports exactly as in
// the simulator.
TEST(TcpChaos, ByzantineSuiteOverTcpPreservesSafety) {
  const ByzantineBehavior kBehaviors[] = {
      ByzantineBehavior::kEquivocateVertices,
      ByzantineBehavior::kSilentLeader,
      ByzantineBehavior::kUnjustifiedLeader,
  };
  int salt = 4;
  for (ByzantineBehavior behavior : kBehaviors) {
    constexpr uint32_t kNodes = 4;
    constexpr NodeId kByz = 1;
    const uint16_t base_port = PickBasePort(salt++);
    Keychain keychain(99, kNodes);
    ClanTopology topology = ClanTopology::Full(kNodes);
    SafetyOracle oracle(kNodes);
    oracle.SetFaulty(kByz, true);

    struct Router : MessageHandler {
      AppNode* app = nullptr;
      void OnMessage(NodeId from, MsgType type, const Bytes& payload) override {
        if (app != nullptr) {
          app->OnMessage(from, type, payload);
        }
      }
    };
    std::vector<Router> routers(kNodes);
    std::vector<std::unique_ptr<TcpRuntime>> nets(kNodes);
    std::vector<std::unique_ptr<ByzantineRuntime>> byz(kNodes);
    std::vector<std::unique_ptr<AppNode>> apps(kNodes);
    std::vector<std::atomic<uint64_t>> ordered(kNodes);

    for (NodeId id = 0; id < kNodes; ++id) {
      nets[id] = std::make_unique<TcpRuntime>(MakeConfig(id, kNodes, base_port),
                                              &routers[id]);
      Runtime* runtime = nets[id].get();
      if (id == kByz) {
        byz[id] = std::make_unique<ByzantineRuntime>(*nets[id], std::set<ByzantineBehavior>{behavior});
        runtime = byz[id].get();
      }
      AppNodeOptions options;
      options.consensus.num_nodes = kNodes;
      options.consensus.num_faults = 1;
      options.consensus.round_timeout = Millis(500);
      // Chaos coverage for the off-thread verification path: echo HMACs and
      // cert multisigs are checked on worker threads under real Byzantine
      // traffic, with in-order delivery back onto the loop thread.
      options.verify_workers = 2;
      AppNodeCallbacks callbacks;
      auto* counter = &ordered[id];
      callbacks.on_ordered = [counter, id, &oracle](const Vertex& v) {
        counter->fetch_add(1);
        oracle.OnOrdered(id, v.round, v.source);
      };
      callbacks.on_completed = [id, &oracle](const Vertex& v, const Digest& d) {
        oracle.OnCompleted(id, v.round, v.source, d);
      };
      apps[id] = std::make_unique<AppNode>(*runtime, keychain, topology, options,
                                           std::move(callbacks));
      routers[id].app = apps[id].get();
    }
    for (auto& net : nets) {
      net->Start();
    }
    for (auto& net : nets) {
      ASSERT_TRUE(net->WaitConnected(Seconds(10)));
    }
    for (NodeId id = 0; id < kNodes; ++id) {
      nets[id]->Post([&, id] {
        for (uint64_t t = 0; t < 10; ++t) {
          apps[id]->SubmitTransaction(id * 1000 + t, Bytes(32, 0x11));
        }
        apps[id]->Start();
      });
    }
    // Run until every honest node ordered a healthy chunk of DAG.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    bool done = false;
    while (!done && std::chrono::steady_clock::now() < deadline) {
      done = true;
      for (NodeId id = 0; id < kNodes; ++id) {
        if (id != kByz && ordered[id].load() < 40) {
          done = false;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    for (auto& net : nets) {
      net->Stop();
    }
    EXPECT_TRUE(done) << "behavior " << static_cast<int>(behavior)
                      << ": honest nodes did not make progress over TCP";
    EXPECT_EQ(oracle.Check(), "") << "behavior " << static_cast<int>(behavior);
  }
}

}  // namespace
}  // namespace clandag
