#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "rbc/bracha_rbc.h"
#include "rbc/two_round_rbc.h"
#include "sim/network.h"

namespace clandag {
namespace {

struct Delivery {
  NodeId sender;
  Round round;
  Digest digest;
  std::optional<Bytes> value;
};

// Hosts one RBC engine per node over the simulated network.
class RbcCluster {
 public:
  enum class Flavor { kBracha, kTwoRound };

  RbcCluster(uint32_t n, std::vector<NodeId> clan, Flavor flavor, bool multicast_cert = true)
      : keychain_(99, n),
        network_(scheduler_, LatencyMatrix::Uniform(n, Millis(10)), NetworkConfig{1e9, 0}),
        deliveries_(n) {
    RbcConfig config;
    config.num_nodes = n;
    config.num_faults = (n - 1) / 3;
    config.clan = std::move(clan);
    config.multicast_cert = multicast_cert;
    config_ = config;
    for (NodeId id = 0; id < n; ++id) {
      runtimes_.push_back(std::make_unique<SimRuntime>(network_, id));
      auto deliver = [this, id](NodeId sender, Round round, const Digest& digest,
                                const Bytes* value) {
        deliveries_[id].push_back(Delivery{
            sender, round, digest,
            value != nullptr ? std::optional<Bytes>(*value) : std::nullopt});
      };
      if (flavor == Flavor::kBracha) {
        engines_.push_back(
            std::make_unique<BrachaRbc>(*runtimes_[id], keychain_, config, deliver));
      } else {
        engines_.push_back(
            std::make_unique<TwoRoundRbc>(*runtimes_[id], keychain_, config, deliver));
      }
      adapters_.push_back(std::make_unique<Adapter>(engines_.back().get()));
      network_.RegisterHandler(id, adapters_.back().get());
    }
  }

  void Broadcast(NodeId sender, Round round, const Bytes& value) {
    engines_[sender]->Broadcast(round, Bytes(value));
  }

  // Byzantine sender helper: a raw VAL directly on the wire.
  void SendRawVal(NodeId from, NodeId to, Round round, const Bytes& value, bool full) {
    RbcValMsg msg;
    msg.round = round;
    msg.digest = Digest::Of(value);
    if (full) {
      msg.value = value;
    }
    runtimes_[from]->Send(to, kRbcVal, msg.Encode());
  }

  void Run(TimeMicros duration = Seconds(10)) { scheduler_.RunUntil(duration); }
  void RunToIdle() { scheduler_.RunUntilIdle(50'000'000); }

  const std::vector<Delivery>& DeliveriesAt(NodeId id) const { return deliveries_[id]; }
  SimNetwork& network() { return network_; }
  const RbcConfig& config() const { return config_; }

 private:
  struct Adapter : MessageHandler {
    explicit Adapter(RbcEngineBase* engine) : engine(engine) {}
    void OnMessage(NodeId from, MsgType type, const Bytes& payload) override {
      engine->HandleMessage(from, type, payload);
    }
    RbcEngineBase* engine;
  };

  Scheduler scheduler_;
  Keychain keychain_;
  SimNetwork network_;
  RbcConfig config_;
  std::vector<std::unique_ptr<SimRuntime>> runtimes_;
  std::vector<std::unique_ptr<RbcEngineBase>> engines_;
  std::vector<std::unique_ptr<Adapter>> adapters_;
  std::vector<std::vector<Delivery>> deliveries_;
};

std::vector<NodeId> Range(NodeId count) {
  std::vector<NodeId> out(count);
  for (NodeId i = 0; i < count; ++i) {
    out[i] = i;
  }
  return out;
}

struct RbcParam {
  uint32_t n;
  uint32_t clan_size;  // == n means standard (whole-tribe) RBC.
  RbcCluster::Flavor flavor;
};

class RbcValidity : public ::testing::TestWithParam<RbcParam> {};

// Definition 2 Validity: honest sender => clan members deliver the value,
// everyone else delivers the digest.
TEST_P(RbcValidity, HonestSenderDeliversEverywhere) {
  const RbcParam p = GetParam();
  RbcCluster cluster(p.n, Range(p.clan_size), p.flavor);
  Bytes value = ToBytes("the payload");
  Digest digest = Digest::Of(value);
  cluster.Broadcast(0, 1, value);
  cluster.Run();
  for (NodeId id = 0; id < p.n; ++id) {
    const auto& ds = cluster.DeliveriesAt(id);
    ASSERT_EQ(ds.size(), 1u) << "node " << id;
    EXPECT_EQ(ds[0].sender, 0u);
    EXPECT_EQ(ds[0].round, 1u);
    EXPECT_EQ(ds[0].digest, digest);
    if (id < p.clan_size) {
      ASSERT_TRUE(ds[0].value.has_value()) << "clan member must deliver the value";
      EXPECT_EQ(*ds[0].value, value);
    } else {
      EXPECT_FALSE(ds[0].value.has_value()) << "non-clan member delivers digest only";
    }
  }
}

TEST_P(RbcValidity, ConcurrentSendersAllDeliver) {
  const RbcParam p = GetParam();
  RbcCluster cluster(p.n, Range(p.clan_size), p.flavor);
  for (NodeId s = 0; s < p.n; ++s) {
    cluster.Broadcast(s, 3, ToBytes("value-" + std::to_string(s)));
  }
  cluster.Run();
  for (NodeId id = 0; id < p.n; ++id) {
    EXPECT_EQ(cluster.DeliveriesAt(id).size(), p.n) << "node " << id;
  }
}

TEST_P(RbcValidity, MultipleRoundsIndependentInstances) {
  const RbcParam p = GetParam();
  RbcCluster cluster(p.n, Range(p.clan_size), p.flavor);
  cluster.Broadcast(1, 1, ToBytes("round one"));
  cluster.Broadcast(1, 2, ToBytes("round two"));
  cluster.Run();
  for (NodeId id = 0; id < p.n; ++id) {
    EXPECT_EQ(cluster.DeliveriesAt(id).size(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RbcValidity,
    ::testing::Values(RbcParam{4, 4, RbcCluster::Flavor::kBracha},
                      RbcParam{4, 4, RbcCluster::Flavor::kTwoRound},
                      RbcParam{7, 4, RbcCluster::Flavor::kBracha},
                      RbcParam{7, 4, RbcCluster::Flavor::kTwoRound},
                      RbcParam{10, 5, RbcCluster::Flavor::kBracha},
                      RbcParam{10, 5, RbcCluster::Flavor::kTwoRound},
                      RbcParam{13, 7, RbcCluster::Flavor::kBracha},
                      RbcParam{13, 7, RbcCluster::Flavor::kTwoRound},
                      RbcParam{13, 13, RbcCluster::Flavor::kBracha},
                      RbcParam{13, 13, RbcCluster::Flavor::kTwoRound}),
    [](const ::testing::TestParamInfo<RbcParam>& info) {
      return "n" + std::to_string(info.param.n) + "c" + std::to_string(info.param.clan_size) +
             (info.param.flavor == RbcCluster::Flavor::kBracha ? "Bracha" : "TwoRound");
    });

class RbcByzantine : public ::testing::TestWithParam<RbcCluster::Flavor> {};

// Byzantine sender pushes the value to only f_c+1 clan members; the rest of
// the clan must download it (paper Figure 2 step 5 / Figure 3 step 3).
TEST_P(RbcByzantine, WithheldValueIsDownloaded) {
  const uint32_t n = 10;
  const uint32_t clan_size = 5;  // f_c = 1, so f_c+1 = 2 holders.
  RbcCluster cluster(n, Range(clan_size), GetParam());
  Bytes value = ToBytes("withheld");
  // Sender 0 (clan member): value to clan nodes 0..2 only, digest to others.
  for (NodeId to = 0; to < n; ++to) {
    cluster.SendRawVal(0, to, 1, value, /*full=*/to <= 2);
  }
  cluster.Run(Seconds(30));
  for (NodeId id = 0; id < n; ++id) {
    const auto& ds = cluster.DeliveriesAt(id);
    ASSERT_EQ(ds.size(), 1u) << "node " << id;
    if (id < clan_size) {
      ASSERT_TRUE(ds[0].value.has_value()) << "clan node " << id << " must obtain the value";
      EXPECT_EQ(*ds[0].value, value);
    }
  }
}

// Equivocating sender: half the clan gets m1, half m2. No two honest parties
// may deliver different digests (delivery may not happen at all).
TEST_P(RbcByzantine, EquivocationNeverSplitsDeliveries) {
  const uint32_t n = 10;
  const uint32_t clan_size = 6;
  RbcCluster cluster(n, Range(clan_size), GetParam());
  Bytes m1 = ToBytes("value one");
  Bytes m2 = ToBytes("value two");
  for (NodeId to = 0; to < n; ++to) {
    const Bytes& m = (to % 2 == 0) ? m1 : m2;
    cluster.SendRawVal(0, to, 1, m, /*full=*/to < clan_size);
  }
  cluster.Run(Seconds(30));
  std::optional<Digest> seen;
  for (NodeId id = 0; id < n; ++id) {
    for (const Delivery& d : cluster.DeliveriesAt(id)) {
      if (!seen.has_value()) {
        seen = d.digest;
      }
      EXPECT_EQ(d.digest, *seen) << "conflicting delivery at node " << id;
    }
  }
}

// Integrity: a second broadcast for the same (sender, round) cannot cause a
// second delivery.
TEST_P(RbcByzantine, IntegrityAtMostOnce) {
  const uint32_t n = 7;
  RbcCluster cluster(n, Range(4), GetParam());
  cluster.Broadcast(2, 5, ToBytes("first"));
  cluster.Run(Seconds(5));
  // Replay the same instance with different content.
  for (NodeId to = 0; to < n; ++to) {
    cluster.SendRawVal(2, to, 5, ToBytes("second"), to < 4);
  }
  cluster.Run(Seconds(20));
  for (NodeId id = 0; id < n; ++id) {
    EXPECT_EQ(cluster.DeliveriesAt(id).size(), 1u) << "node " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Flavors, RbcByzantine,
                         ::testing::Values(RbcCluster::Flavor::kBracha,
                                           RbcCluster::Flavor::kTwoRound),
                         [](const ::testing::TestParamInfo<RbcCluster::Flavor>& info) {
                           return info.param == RbcCluster::Flavor::kBracha ? "Bracha"
                                                                            : "TwoRound";
                         });

// Bracha's READY amplification: a node whose ECHOs were all lost still
// delivers from f+1 READY messages.
TEST(BrachaRbc, DeliversDespiteLostEchoes) {
  const uint32_t n = 7;
  RbcCluster cluster(n, Range(n), RbcCluster::Flavor::kBracha);
  // Drop every ECHO addressed to node 6.
  cluster.network().SetAdversary([](NodeId, NodeId to, MsgType type, TimeMicros) -> TimeMicros {
    if (to == 6 && type == kRbcEcho) {
      return kDropMessage;
    }
    return 0;
  });
  Bytes value = ToBytes("resilient");
  cluster.Broadcast(0, 1, value);
  cluster.Run(Seconds(30));
  ASSERT_EQ(cluster.DeliveriesAt(6).size(), 1u);
  EXPECT_EQ(*cluster.DeliveriesAt(6)[0].value, value);
}

// Two-round flavour: the echo-certificate multicast lets a node that missed
// the ECHOs deliver.
TEST(TwoRoundRbc, CertificateCarriesLaggards) {
  const uint32_t n = 7;
  RbcCluster cluster(n, Range(n), RbcCluster::Flavor::kTwoRound, /*multicast_cert=*/true);
  cluster.network().SetAdversary([](NodeId, NodeId to, MsgType type, TimeMicros) -> TimeMicros {
    if (to == 6 && type == kRbcEcho) {
      return kDropMessage;
    }
    return 0;
  });
  Bytes value = ToBytes("via-cert");
  cluster.Broadcast(0, 1, value);
  cluster.Run(Seconds(30));
  ASSERT_EQ(cluster.DeliveriesAt(6).size(), 1u);
  EXPECT_EQ(*cluster.DeliveriesAt(6)[0].value, value);
}

// Good-case certificate suppression still delivers everywhere when every
// honest echo arrives (the optimization's stated precondition).
TEST(TwoRoundRbc, CertSuppressionGoodCase) {
  const uint32_t n = 10;
  RbcCluster cluster(n, Range(5), RbcCluster::Flavor::kTwoRound, /*multicast_cert=*/false);
  cluster.Broadcast(3, 2, ToBytes("no certs"));
  cluster.Run(Seconds(10));
  for (NodeId id = 0; id < n; ++id) {
    EXPECT_EQ(cluster.DeliveriesAt(id).size(), 1u) << "node " << id;
  }
}

// A non-clan sender's VAL carrying a full value to a non-clan node is
// rejected (values are confined to the clan).
TEST(TribeRbc, NonClanValueIgnored) {
  const uint32_t n = 7;
  RbcCluster cluster(n, Range(4), RbcCluster::Flavor::kTwoRound);
  // Send full value to node 5 (outside the clan) only; nobody else hears.
  cluster.SendRawVal(0, 5, 1, ToBytes("smuggled"), /*full=*/true);
  cluster.Run(Seconds(5));
  EXPECT_TRUE(cluster.DeliveriesAt(5).empty());
}

// Crashed sender: nothing delivers, nothing wedges.
TEST(TribeRbc, CrashedSenderNoDelivery) {
  const uint32_t n = 7;
  RbcCluster cluster(n, Range(4), RbcCluster::Flavor::kBracha);
  cluster.network().SetCrashed(0, true);
  cluster.Broadcast(0, 1, ToBytes("never sent"));
  cluster.Run(Seconds(5));
  for (NodeId id = 0; id < n; ++id) {
    EXPECT_TRUE(cluster.DeliveriesAt(id).empty());
  }
}

}  // namespace
}  // namespace clandag
