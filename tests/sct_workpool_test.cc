// SCT tests for OrderedVerifyPool: the in-submission-order delivery
// guarantee must hold under ADVERSARIAL schedules (workers finishing out of
// order, the releaser token bouncing between threads, the producer blocked
// on backpressure, the destructor racing a half-drained queue) — not just
// under whatever interleavings the OS happens to produce.

#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/work_pool.h"
#include "sct_test_util.h"
#include "testing/sct/explore.h"

namespace clandag {
namespace {

using sct::Strategy;
using sct_test::BaseSeed;
using sct_test::DeepMultiplier;

// Immediate executor: delivery happens on whichever thread holds the
// releaser token, preserving the call order (the pool calls deliver_ with
// its lock held, one releaser at a time).
OrderedVerifyPool::Executor InlineExecutor() {
  return [](std::function<void()> fn) { fn(); };
}

TEST(SctWorkPool, InOrderDeliveryUnderAdversarialCompletion) {
  SCT_REQUIRE_BUILD();
  constexpr int kJobs = 5;
  for (Strategy strategy : {Strategy::kRandomWalk, Strategy::kPct}) {
    auto result = sct::Explore(
        {.strategy = strategy,
         .seed = BaseSeed(),
         .schedules = 60 * DeepMultiplier()},
        [] {
          Mutex done_mu("sct_test.workpool.done");
          CondVar done_cv;
          std::vector<int> order;
          bool all_done = false;
          {
            OrderedVerifyPool pool({.num_workers = 2, .max_batch = 2},
                                   InlineExecutor());
            for (int i = 0; i < kJobs; ++i) {
              pool.Submit([i] { return (i % 2) == 0; },
                          [i, &done_mu, &done_cv, &order, &all_done](bool ok) {
                            SCT_ASSERT(ok == ((i % 2) == 0));
                            MutexLock lock(done_mu);
                            order.push_back(i);
                            if (order.size() == static_cast<size_t>(kJobs)) {
                              all_done = true;
                              done_cv.NotifyOne();
                            }
                          });
            }
            {
              MutexLock lock(done_mu);
              while (!all_done) {
                done_cv.Wait(done_mu);
              }
            }
          }
          // Every job delivered, in exact submission order, regardless of
          // which worker finished which verify first.
          SCT_ASSERT(order.size() == static_cast<size_t>(kJobs));
          for (int i = 0; i < kJobs; ++i) {
            SCT_ASSERT(order[static_cast<size_t>(i)] == i);
          }
        });
    EXPECT_EQ(result.failures, 0u)
        << sct::StrategyName(strategy) << ": " << result.first_failure_message
        << "\n" << result.first_failure_trace;
  }
}

TEST(SctWorkPool, BackpressureEdgeAndStopWhileDraining) {
  SCT_REQUIRE_BUILD();
  auto result = sct::Explore(
      {.strategy = Strategy::kRandomWalk,
       .seed = BaseSeed(),
       .schedules = 80 * DeepMultiplier()},
      [] {
        Mutex done_mu("sct_test.workpool.done");
        std::vector<int> order;
        {
          // max_pending = 2 forces Submit() onto the space_cv_ wait path
          // (the full edge) in most schedules; destroying the pool with
          // jobs still queued exercises stop-while-draining.
          OrderedVerifyPool pool(
              {.num_workers = 2, .max_batch = 1, .max_pending = 2},
              InlineExecutor());
          for (int i = 0; i < 5; ++i) {
            pool.Submit([] { return true; }, [i, &done_mu, &order](bool ok) {
              SCT_ASSERT(ok);
              MutexLock lock(done_mu);
              order.push_back(i);
            });
          }
          // Destructor races the workers: stopping_ wakes everything; jobs
          // not yet handed to the executor are discarded.
        }
        // Delivered callbacks must form an exact prefix of submission order:
        // in-order release means nothing can be skipped then delivered.
        for (size_t i = 0; i < order.size(); ++i) {
          SCT_ASSERT(order[i] == static_cast<int>(i));
        }
      });
  EXPECT_EQ(result.failures, 0u)
      << result.first_failure_message << "\n" << result.first_failure_trace;
}

TEST(SctWorkPool, StopWithEmptyQueueIsClean) {
  SCT_REQUIRE_BUILD();
  auto result = sct::Explore(
      {.strategy = Strategy::kPct,
       .seed = BaseSeed(),
       .schedules = 40 * DeepMultiplier()},
      [] {
        // The empty edge: workers may still be parked in work_cv_.Wait (or
        // not yet started) when the destructor runs.
        OrderedVerifyPool pool({.num_workers = 2}, InlineExecutor());
      });
  EXPECT_EQ(result.failures, 0u)
      << result.first_failure_message << "\n" << result.first_failure_trace;
}

}  // namespace
}  // namespace clandag
