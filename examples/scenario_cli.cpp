// Scenario CLI: run any clan-DAG configuration from the command line and
// print the evaluation metrics. The generic entry point for custom
// experiments beyond the canned benchmark binaries.
//
//   ./build/examples/scenario_cli --n=50 --mode=single --txs=2000
//   ./build/examples/scenario_cli --n=150 --mode=multi --clans=2 --txs=1000
//       --uplink-gbps=1 --cost --crash=0,7   (one command line)
//
// Flags (defaults in brackets):
//   --n=<nodes>            tribe size [20]
//   --mode=full|single|multi  dissemination mode [full]
//   --clan=<size>          single-clan size [auto from --mu]
//   --mu=<bits>            clan failure budget, 2^-mu [19.93 ~ 1e-6]
//   --clans=<q>            number of clans in multi mode [2]
//   --txs=<count>          transactions per proposal (512 B each) [500]
//   --rbc=two|bracha       broadcast flavour [two]
//   --topology=gcp|uniform latency model [gcp]
//   --latency-ms=<ms>      uniform one-way delay [50]
//   --uplink-gbps=<gbps>   per-node uplink [16]
//   --cost                 enable the calibrated CPU cost model
//   --crash=<id,id,...>    fail-stop these nodes from the start
//   --rounds=<m>           measurement rounds [8]
//   --timeout-ms=<ms>      round timeout (lower it when crashing leaders) [30000]
//   --seed=<s>             deterministic seed [1]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/scenario.h"

using namespace clandag;

namespace {

bool FlagValue(const char* arg, const char* name, std::string& out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioOptions options;
  options.num_nodes = 20;
  options.txs_per_proposal = 500;
  options.uniform_latency = Millis(50);
  options.warmup_rounds = 3;
  options.measure_rounds = 8;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (FlagValue(argv[i], "--n", value)) {
      options.num_nodes = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (FlagValue(argv[i], "--mode", value)) {
      if (value == "single") {
        options.mode = DisseminationMode::kSingleClan;
      } else if (value == "multi") {
        options.mode = DisseminationMode::kMultiClan;
      } else if (value == "full") {
        options.mode = DisseminationMode::kFull;
      } else {
        std::fprintf(stderr, "unknown --mode=%s\n", value.c_str());
        return 2;
      }
    } else if (FlagValue(argv[i], "--clan", value)) {
      options.clan_size = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (FlagValue(argv[i], "--mu", value)) {
      options.clan_mu = std::atof(value.c_str());
    } else if (FlagValue(argv[i], "--clans", value)) {
      options.num_clans = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (FlagValue(argv[i], "--txs", value)) {
      options.txs_per_proposal = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (FlagValue(argv[i], "--rbc", value)) {
      options.flavor = value == "bracha" ? RbcFlavor::kBracha : RbcFlavor::kTwoRound;
    } else if (FlagValue(argv[i], "--topology", value)) {
      options.topology = value == "uniform" ? ScenarioOptions::Topology::kUniform
                                            : ScenarioOptions::Topology::kGcpGeo;
    } else if (FlagValue(argv[i], "--latency-ms", value)) {
      options.uniform_latency = Millis(std::atoi(value.c_str()));
    } else if (FlagValue(argv[i], "--uplink-gbps", value)) {
      options.uplink_bytes_per_sec = std::atof(value.c_str()) * 1e9 / 8.0;
    } else if (std::strcmp(argv[i], "--cost") == 0) {
      options.cost.enabled = true;
      options.verify_signatures = false;
    } else if (FlagValue(argv[i], "--crash", value)) {
      size_t pos = 0;
      while (pos < value.size()) {
        options.crashed.push_back(static_cast<NodeId>(std::atoi(value.c_str() + pos)));
        pos = value.find(',', pos);
        if (pos == std::string::npos) {
          break;
        }
        ++pos;
      }
    } else if (FlagValue(argv[i], "--rounds", value)) {
      options.measure_rounds = static_cast<Round>(std::atoi(value.c_str()));
    } else if (FlagValue(argv[i], "--timeout-ms", value)) {
      options.round_timeout = Millis(std::atoi(value.c_str()));
    } else if (FlagValue(argv[i], "--seed", value)) {
      options.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else {
      std::fprintf(stderr, "unknown flag: %s (see header comment)\n", argv[i]);
      return 2;
    }
  }

  ClanTopology topology = TopologyFor(options);
  std::printf("running: %s, n=%u, %u txs/proposal, %s topology, %.1f Gbps, cost model %s\n",
              topology.Describe().c_str(), options.num_nodes, options.txs_per_proposal,
              options.topology == ScenarioOptions::Topology::kGcpGeo ? "GCP" : "uniform",
              options.uplink_bytes_per_sec * 8.0 / 1e9, options.cost.enabled ? "on" : "off");

  ScenarioResult r = RunScenario(options);
  if (!r.ok) {
    std::printf("FAILED: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("throughput        : %.1f kTPS (%llu txs over %.2f s)\n", r.throughput_ktps,
              static_cast<unsigned long long>(r.committed_txs), r.measure_seconds);
  std::printf("latency           : mean %.0f ms, p50 %.0f, p95 %.0f\n", r.mean_latency_ms,
              r.p50_latency_ms, r.p95_latency_ms);
  std::printf("rounds committed  : %lld (anchors %llu committed, %llu skipped)\n",
              static_cast<long long>(r.last_committed_round),
              static_cast<unsigned long long>(r.anchors_committed),
              static_cast<unsigned long long>(r.anchors_skipped));
  std::printf("bandwidth         : %.2f GB total, %.2f Gbps mean per-node uplink\n",
              r.total_gbytes_sent, r.mean_node_uplink_gbps);
  std::printf("agreement         : %s (%llu ordered vertices cross-checked)\n",
              r.agreement_ok ? "OK" : "VIOLATED",
              static_cast<unsigned long long>(r.ordered_vertices_checked));
  return 0;
}
