// Crash-recovery demo: a simulated 4-node cluster where one node fail-stops
// mid-run, restarts from its write-ahead log, replays the committed prefix,
// fetches the rounds it missed from its peers, and rejoins the protocol.
// Prints the recovery and state-sync counters (core/metrics).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/crash_recovery

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/app_node.h"
#include "core/metrics.h"
#include "sim/network.h"

using namespace clandag;

namespace {

constexpr uint32_t kNodes = 4;
constexpr NodeId kVictim = 3;

// WALs land under --dir <path> when given, else a scratch directory under
// $TMPDIR (or /tmp) — never the working directory, which is typically the
// repo checkout.
std::string g_wal_dir;

std::string WalDir(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0) {
      return argv[i + 1];
    }
  }
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/clandag_crash_recovery";
}

std::string WalPath(NodeId id) {
  return g_wal_dir + "/crash_recovery_wal_" + std::to_string(id) + ".log";
}

std::unique_ptr<AppNode> MakeNode(Runtime& runtime, const Keychain& keychain,
                                  const ClanTopology& topology,
                                  std::vector<std::pair<Round, NodeId>>* ordered_log) {
  AppNodeOptions options;
  options.consensus.num_nodes = kNodes;
  options.consensus.num_faults = 1;
  options.consensus.round_timeout = Millis(400);
  options.consensus.gc_depth = 16;
  options.wal_path = WalPath(runtime.id());
  AppNodeCallbacks callbacks;
  callbacks.on_ordered = [ordered_log](const Vertex& v) {
    ordered_log->push_back({v.round, v.source});
  };
  auto node = std::make_unique<AppNode>(runtime, keychain, topology, options, callbacks);
  for (uint64_t i = 0; i < 400; ++i) {
    node->SubmitTransaction(runtime.id() * 10000 + i, Bytes(128, 0x5a));
  }
  return node;
}

}  // namespace

int main(int argc, char** argv) {
  g_wal_dir = WalDir(argc, argv);
  std::error_code ec;
  std::filesystem::create_directories(g_wal_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create WAL directory %s: %s\n",
                 g_wal_dir.c_str(), ec.message().c_str());
    return 1;
  }
  for (NodeId id = 0; id < kNodes; ++id) {
    std::remove(WalPath(id).c_str());  // Fresh logs for a repeatable demo.
  }

  Scheduler scheduler;
  Keychain keychain(17, kNodes);
  ClanTopology topology = ClanTopology::Full(kNodes);
  SimNetwork network(scheduler, LatencyMatrix::Uniform(kNodes, Millis(10)),
                     NetworkConfig{1e9, 0});

  std::vector<std::unique_ptr<SimRuntime>> runtimes;
  std::vector<std::unique_ptr<AppNode>> nodes;
  std::vector<std::vector<std::pair<Round, NodeId>>> ordered(kNodes);
  for (NodeId id = 0; id < kNodes; ++id) {
    runtimes.push_back(std::make_unique<SimRuntime>(network, id));
    nodes.push_back(MakeNode(*runtimes[id], keychain, topology, &ordered[id]));
    network.RegisterHandler(id, nodes[id].get());
  }
  for (auto& node : nodes) {
    node->Start();
  }

  // Phase 1: healthy cluster.
  scheduler.RunUntil(Seconds(3));
  const int64_t committed_at_crash = nodes[kVictim]->consensus().LastCommittedRound();
  std::printf("t=3s  crash node %u (committed round %lld)\n", kVictim,
              static_cast<long long>(committed_at_crash));
  network.SetCrashed(kVictim, true);

  // Phase 2: the survivors keep committing; the victim's timers drain while
  // its traffic is dropped. (The crashed AppNode object must outlive its
  // scheduled callbacks, so it is kept as a zombie, not destroyed.)
  scheduler.RunUntil(Seconds(7));

  // Phase 3: restart from the WAL — a brand-new AppNode over the same
  // identity and log file.
  std::printf("t=7s  restart node %u from %s\n", kVictim, WalPath(kVictim).c_str());
  std::vector<std::pair<Round, NodeId>> ordered_after_restart;
  auto restart_runtime = std::make_unique<SimRuntime>(network, kVictim);
  auto restarted =
      MakeNode(*restart_runtime, keychain, topology, &ordered_after_restart);
  network.RegisterHandler(kVictim, restarted.get());
  network.SetCrashed(kVictim, false);
  restarted->Start();
  const RecoveryStats& rec = restarted->recovery_stats();
  std::printf("      replayed %llu WAL records: %zu committed + %zu trailing vertices, "
              "resume round %llu (%.1f ms host time)\n",
              static_cast<unsigned long long>(rec.wal_records), rec.restored_vertices,
              rec.trailing_vertices, static_cast<unsigned long long>(rec.resume_round),
              static_cast<double>(rec.duration_us) / 1000.0);

  scheduler.RunUntil(Seconds(12));

  const int64_t victim_committed = restarted->consensus().LastCommittedRound();
  const int64_t peer_committed = nodes[0]->consensus().LastCommittedRound();
  std::printf("t=12s node %u committed round %lld (peer at %lld)\n", kVictim,
              static_cast<long long>(victim_committed), static_cast<long long>(peer_committed));

  SyncStats sync = restarted->sync_stats();
  for (NodeId id = 0; id < kNodes; ++id) {
    if (id != kVictim) {
      sync += nodes[id]->sync_stats();
    }
  }
  std::printf("state sync: %s\n", FormatSyncStats(sync).c_str());

  // The restarted node's post-restart order must be a continuation of the
  // healthy nodes' order: peer order == (replayed prefix) + (live stream).
  const auto& reference = ordered[0];
  const size_t prefix = rec.restored_vertices;
  bool ok = victim_committed + 4 >= peer_committed && sync.vertices_fetched > 0;
  for (size_t i = 0; i < ordered_after_restart.size(); ++i) {
    if (prefix + i >= reference.size() ||
        !(reference[prefix + i] == ordered_after_restart[i])) {
      ok = (prefix + i >= reference.size());  // Reference may simply be shorter.
      break;
    }
  }
  std::printf("recovery %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
