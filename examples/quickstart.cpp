// Quickstart: run a simulated single-clan DAG BFT cluster and print the
// metrics the paper's evaluation reports.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/metrics.h"
#include "core/scenario.h"
#include "stats/clan_sizing.h"

using namespace clandag;

int main() {
  // A 16-node tribe; the clan sizing machinery picks the smallest clan that
  // keeps an honest majority except with probability < 2^-10 (toy target so
  // the clan is a proper subset at this small scale).
  ScenarioOptions options;
  options.num_nodes = 16;
  options.mode = DisseminationMode::kSingleClan;
  options.clan_mu = 10.0;
  options.txs_per_proposal = 500;  // 512-byte transactions, as in the paper.
  options.topology = ScenarioOptions::Topology::kGcpGeo;
  options.warmup_rounds = 3;
  options.measure_rounds = 8;

  ClanTopology topology = TopologyFor(options);
  std::printf("topology: %s\n", topology.Describe().c_str());
  std::printf("clan quorum (f_c + 1): %u\n\n", topology.ClanQuorumFor(topology.Clan(0)[0]));

  ScenarioResult result = RunScenario(options);
  if (!result.ok) {
    std::printf("scenario failed: %s\n", result.error.c_str());
    return 1;
  }

  std::printf("committed transactions : %llu\n",
              static_cast<unsigned long long>(result.committed_txs));
  std::printf("throughput             : %.1f kTPS\n", result.throughput_ktps);
  std::printf("mean commit latency    : %.0f ms (p50 %.0f, p95 %.0f)\n", result.mean_latency_ms,
              result.p50_latency_ms, result.p95_latency_ms);
  std::printf("last committed round   : %lld\n",
              static_cast<long long>(result.last_committed_round));
  std::printf("anchors committed/skip : %llu / %llu\n",
              static_cast<unsigned long long>(result.anchors_committed),
              static_cast<unsigned long long>(result.anchors_skipped));
  std::printf("agreement across nodes : %s (%llu ordered vertices checked)\n",
              result.agreement_ok ? "OK" : "VIOLATED",
              static_cast<unsigned long long>(result.ordered_vertices_checked));
  std::printf("state sync             : %s\n", FormatSyncStats(result.sync).c_str());
  return result.agreement_ok ? 0 : 1;
}
