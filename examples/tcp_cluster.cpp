// Live TCP cluster demo: four consensus nodes over real localhost sockets
// (epoll, length-prefixed frames), committing and executing client
// transfers submitted at runtime.
//
//   ./build/examples/tcp_cluster [base_port]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/app_node.h"
#include "net/tcp_transport.h"

using namespace clandag;

namespace {

struct Router : MessageHandler {
  AppNode* app = nullptr;
  void OnMessage(NodeId from, MsgType type, const Bytes& payload) override {
    if (app != nullptr) {
      app->OnMessage(from, type, payload);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  constexpr uint32_t kNodes = 4;
  const uint16_t base_port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 23000;

  Keychain keychain(7, kNodes);
  ClanTopology topology = ClanTopology::Full(kNodes);

  std::vector<Router> routers(kNodes);
  std::vector<std::unique_ptr<TcpRuntime>> nets(kNodes);
  std::vector<std::unique_ptr<AppNode>> apps(kNodes);

  for (NodeId id = 0; id < kNodes; ++id) {
    TcpConfig config;
    config.id = id;
    config.num_nodes = kNodes;
    config.base_port = base_port;
    nets[id] = std::make_unique<TcpRuntime>(config, &routers[id]);

    AppNodeOptions options;
    options.consensus.num_nodes = kNodes;
    options.consensus.num_faults = 1;
    options.consensus.round_timeout = Seconds(5);
    AppNodeCallbacks callbacks;
    if (id == 0) {
      callbacks.on_receipt = [](const ExecutionReceipt& r) {
        if (r.txs_executed > 0) {
          std::printf("executed block (round %llu, proposer %u): %u txs, state %s\n",
                      static_cast<unsigned long long>(r.round), r.proposer, r.txs_executed,
                      r.state_digest.Brief().c_str());
        }
      };
    }
    apps[id] = std::make_unique<AppNode>(*nets[id], keychain, topology, options,
                                         std::move(callbacks));
    routers[id].app = apps[id].get();
  }

  std::printf("starting %u nodes on 127.0.0.1:%u..%u\n", kNodes, base_port,
              base_port + kNodes - 1);
  for (auto& net : nets) {
    net->Start();
  }
  for (auto& net : nets) {
    if (!net->WaitConnected(Seconds(10))) {
      std::printf("mesh failed to connect (port collision?)\n");
      return 1;
    }
  }
  std::printf("mesh connected; submitting transactions and starting consensus\n");

  for (NodeId id = 0; id < kNodes; ++id) {
    nets[id]->Post([&apps, id] {
      for (uint64_t t = 0; t < 25; ++t) {
        apps[id]->SubmitTransaction(id * 1000 + t,
                                    EncodeTransfer(static_cast<uint32_t>(t % 3),
                                                   static_cast<uint32_t>(3 + t % 3), 2));
      }
      apps[id]->Start();
    });
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    bool done = true;
    for (auto& app : apps) {
      if (app->execution().ExecutedTxs() < kNodes * 25) {
        done = false;
      }
    }
    if (done) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  for (auto& net : nets) {
    net->Stop();
  }

  std::printf("\nfinal state digests:\n");
  bool consistent = true;
  for (NodeId id = 0; id < kNodes; ++id) {
    std::printf("  node %u: %s (%llu txs executed)\n", id,
                apps[id]->execution().StateDigest().Brief().c_str(),
                static_cast<unsigned long long>(apps[id]->execution().ExecutedTxs()));
    if (!(apps[id]->execution().StateDigest() == apps[0]->execution().StateDigest())) {
      consistent = false;
    }
  }
  std::printf("replica consistency: %s\n", consistent ? "OK" : "VIOLATED");
  return consistent ? 0 : 1;
}
