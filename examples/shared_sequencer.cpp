// Shared-sequencer demo (paper §6.1): a multi-clan deployment where each
// clan serves an independent application ("rollup"). All applications'
// transactions are globally ordered by one DAG consensus; each clan executes
// only its own application's transactions and answers that application's
// clients, who accept once f_c+1 identical receipts arrive.
//
// Runs live on the in-process threaded transport (real time, real threads).
//
//   ./build/examples/shared_sequencer

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include "core/app_node.h"
#include "net/inproc_transport.h"
#include "smr/client.h"

using namespace clandag;

int main() {
  constexpr uint32_t kNodes = 12;
  constexpr uint32_t kClans = 3;  // Three independent applications.
  constexpr uint64_t kTxsPerApp = 30;

  Keychain keychain(2024, kNodes);
  ClanTopology topology = ClanTopology::MultiClan(kNodes, kClans);
  std::printf("topology: %s\n", topology.Describe().c_str());

  InProcCluster cluster(kNodes);

  // One client per application, matching receipts f_c+1 ways.
  std::mutex client_mu;
  std::vector<ClientReplyCollector> clients;
  for (uint32_t c = 0; c < kClans; ++c) {
    clients.emplace_back(topology.ClanQuorumFor(topology.Clan(c)[0]));
  }

  std::vector<std::unique_ptr<AppNode>> apps(kNodes);
  for (NodeId id = 0; id < kNodes; ++id) {
    AppNodeOptions options;
    options.consensus.num_nodes = kNodes;
    options.consensus.num_faults = (kNodes - 1) / 3;
    options.consensus.round_timeout = Seconds(5);
    AppNodeCallbacks callbacks;
    const int clan = topology.ClanIndexOf(id);
    callbacks.on_receipt = [&clients, &client_mu, clan, id](const ExecutionReceipt& receipt) {
      std::lock_guard<std::mutex> lock(client_mu);
      auto confirmed = clients[clan].AddReply(id, receipt);
      if (confirmed.has_value() && confirmed->txs_executed > 0) {
        std::printf("app %d: block (round %llu, proposer %u) confirmed with %u txs\n", clan,
                    static_cast<unsigned long long>(confirmed->round), confirmed->proposer,
                    confirmed->txs_executed);
      }
    };
    apps[id] = std::make_unique<AppNode>(cluster.RuntimeOf(id), keychain, topology, options,
                                         std::move(callbacks));
    cluster.RegisterHandler(id, apps[id].get());
  }

  cluster.Start();

  // Each application submits transfers to one of its clan's nodes.
  for (uint32_t c = 0; c < kClans; ++c) {
    const NodeId entry = topology.Clan(c)[0];
    cluster.Post(entry, [&apps, entry, c] {
      for (uint64_t t = 0; t < kTxsPerApp; ++t) {
        apps[entry]->SubmitTransaction(c * 10'000 + t,
                                       EncodeTransfer(static_cast<uint32_t>(t % 5),
                                                      static_cast<uint32_t>(5 + t % 5), 1));
      }
    });
  }
  for (NodeId id = 0; id < kNodes; ++id) {
    cluster.Post(id, [&apps, id] { apps[id]->Start(); });
  }

  // Wait until every application's client confirmed its transactions.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard<std::mutex> lock(client_mu);
      uint32_t confirmed_apps = 0;
      for (auto& client : clients) {
        if (client.ConfirmedCount() > 0) {
          ++confirmed_apps;
        }
      }
      if (confirmed_apps == kClans) {
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  cluster.Stop();

  std::printf("\nper-node summary:\n");
  for (NodeId id = 0; id < kNodes; ++id) {
    std::printf("  node %2u (app %d): ordered %llu vertices, executed %llu blocks, state %s\n",
                id, topology.ClanIndexOf(id),
                static_cast<unsigned long long>(apps[id]->OrderedVertices()),
                static_cast<unsigned long long>(apps[id]->ExecutedBlocks()),
                apps[id]->execution().StateDigest().Brief().c_str());
  }
  // Replicas within a clan must agree on their application state.
  bool consistent = true;
  for (uint32_t c = 0; c < kClans; ++c) {
    const auto& clan = topology.Clan(c);
    for (size_t i = 1; i < clan.size(); ++i) {
      if (!(apps[clan[i]]->execution().StateDigest() ==
            apps[clan[0]]->execution().StateDigest())) {
        consistent = false;
      }
    }
  }
  std::printf("\nintra-clan state consistency: %s\n", consistent ? "OK" : "VIOLATED");
  return consistent ? 0 : 1;
}
