// Geo-distributed comparison demo: Sailfish vs single-clan vs multi-clan on
// the paper's five-region GCP latency matrix, under bandwidth pressure.
// A miniature of the paper's Figure 5 experiment, sized to run in seconds.
//
//   ./build/examples/geo_cluster_sim [n] [txs_per_proposal]

#include <cstdio>
#include <cstdlib>

#include "core/scenario.h"

using namespace clandag;

int main(int argc, char** argv) {
  const uint32_t n = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 20;
  const uint32_t txs = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 2000;

  ScenarioOptions base;
  base.num_nodes = n;
  base.txs_per_proposal = txs;
  base.topology = ScenarioOptions::Topology::kGcpGeo;
  base.uplink_bytes_per_sec = 125e6;  // 1 Gbps effective goodput.
  base.warmup_rounds = 3;
  base.measure_rounds = 6;

  std::printf("n=%u, %u txs/proposal (512 B each), GCP 5-region latency, 1 Gbps uplink\n\n", n,
              txs);
  std::printf("%-14s %10s %12s %12s %14s\n", "protocol", "kTPS", "mean ms", "p95 ms",
              "node Gbps");

  for (DisseminationMode mode : {DisseminationMode::kFull, DisseminationMode::kSingleClan,
                                 DisseminationMode::kMultiClan}) {
    ScenarioOptions options = base;
    options.mode = mode;
    options.clan_size = (n * 3) / 5;  // Roughly the paper's clan fraction.
    options.num_clans = 2;
    ScenarioResult r = RunScenario(options);
    if (!r.ok) {
      std::printf("%-14s failed: %s\n", DisseminationModeName(mode), r.error.c_str());
      continue;
    }
    std::printf("%-14s %10.1f %12.0f %12.0f %14.2f\n", DisseminationModeName(mode),
                r.throughput_ktps, r.mean_latency_ms, r.p95_latency_ms,
                r.mean_node_uplink_gbps);
  }
  std::printf(
      "\nExpected shape (paper Fig. 5): single-clan sustains more throughput than full\n"
      "replication at equal or lower latency; multi-clan roughly doubles single-clan.\n");
  return 0;
}
