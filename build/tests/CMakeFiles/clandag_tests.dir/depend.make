# Empty dependencies file for clandag_tests.
# This may be replaced when dependencies are built.
