
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/byzantine_test.cc" "tests/CMakeFiles/clandag_tests.dir/byzantine_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/byzantine_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/clandag_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/consensus_test.cc" "tests/CMakeFiles/clandag_tests.dir/consensus_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/consensus_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/clandag_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/crypto_test.cc" "tests/CMakeFiles/clandag_tests.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/crypto_test.cc.o.d"
  "/root/repo/tests/dag_test.cc" "tests/CMakeFiles/clandag_tests.dir/dag_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/dag_test.cc.o.d"
  "/root/repo/tests/dissemination_test.cc" "tests/CMakeFiles/clandag_tests.dir/dissemination_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/dissemination_test.cc.o.d"
  "/root/repo/tests/erasure_test.cc" "tests/CMakeFiles/clandag_tests.dir/erasure_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/erasure_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/clandag_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/longrun_test.cc" "tests/CMakeFiles/clandag_tests.dir/longrun_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/longrun_test.cc.o.d"
  "/root/repo/tests/poa_baseline_test.cc" "tests/CMakeFiles/clandag_tests.dir/poa_baseline_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/poa_baseline_test.cc.o.d"
  "/root/repo/tests/rbc_test.cc" "tests/CMakeFiles/clandag_tests.dir/rbc_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/rbc_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/clandag_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/smr_test.cc" "tests/CMakeFiles/clandag_tests.dir/smr_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/smr_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/clandag_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/transport_test.cc" "tests/CMakeFiles/clandag_tests.dir/transport_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/transport_test.cc.o.d"
  "/root/repo/tests/wire_fuzz_test.cc" "tests/CMakeFiles/clandag_tests.dir/wire_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/clandag_tests.dir/wire_fuzz_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/clandag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/clandag_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/rbc/CMakeFiles/clandag_rbc.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/clandag_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/smr/CMakeFiles/clandag_smr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/clandag_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/clandag_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/clandag_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/clandag_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clandag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
