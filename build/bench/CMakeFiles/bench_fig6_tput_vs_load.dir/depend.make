# Empty dependencies file for bench_fig6_tput_vs_load.
# This may be replaced when dependencies are built.
