# Empty dependencies file for bench_fig5a_n50.
# This may be replaced when dependencies are built.
