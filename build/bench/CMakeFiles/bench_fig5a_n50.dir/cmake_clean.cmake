file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_n50.dir/bench_fig5a_n50.cc.o"
  "CMakeFiles/bench_fig5a_n50.dir/bench_fig5a_n50.cc.o.d"
  "bench_fig5a_n50"
  "bench_fig5a_n50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_n50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
