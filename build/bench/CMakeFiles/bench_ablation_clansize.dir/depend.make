# Empty dependencies file for bench_ablation_clansize.
# This may be replaced when dependencies are built.
