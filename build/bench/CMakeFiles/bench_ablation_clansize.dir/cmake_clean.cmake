file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_clansize.dir/bench_ablation_clansize.cc.o"
  "CMakeFiles/bench_ablation_clansize.dir/bench_ablation_clansize.cc.o.d"
  "bench_ablation_clansize"
  "bench_ablation_clansize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_clansize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
