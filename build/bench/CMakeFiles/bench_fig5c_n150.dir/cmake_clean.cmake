file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_n150.dir/bench_fig5c_n150.cc.o"
  "CMakeFiles/bench_fig5c_n150.dir/bench_fig5c_n150.cc.o.d"
  "bench_fig5c_n150"
  "bench_fig5c_n150.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_n150.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
