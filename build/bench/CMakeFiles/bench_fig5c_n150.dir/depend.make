# Empty dependencies file for bench_fig5c_n150.
# This may be replaced when dependencies are built.
