
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5c_n150.cc" "bench/CMakeFiles/bench_fig5c_n150.dir/bench_fig5c_n150.cc.o" "gcc" "bench/CMakeFiles/bench_fig5c_n150.dir/bench_fig5c_n150.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/clandag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/smr/CMakeFiles/clandag_smr.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/clandag_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/clandag_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/rbc/CMakeFiles/clandag_rbc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/clandag_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/clandag_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/clandag_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/clandag_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clandag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
