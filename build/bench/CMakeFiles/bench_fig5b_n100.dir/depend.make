# Empty dependencies file for bench_fig5b_n100.
# This may be replaced when dependencies are built.
