file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_n100.dir/bench_fig5b_n100.cc.o"
  "CMakeFiles/bench_fig5b_n100.dir/bench_fig5b_n100.cc.o.d"
  "bench_fig5b_n100"
  "bench_fig5b_n100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_n100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
