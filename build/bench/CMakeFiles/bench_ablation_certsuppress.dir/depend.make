# Empty dependencies file for bench_ablation_certsuppress.
# This may be replaced when dependencies are built.
