file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_certsuppress.dir/bench_ablation_certsuppress.cc.o"
  "CMakeFiles/bench_ablation_certsuppress.dir/bench_ablation_certsuppress.cc.o.d"
  "bench_ablation_certsuppress"
  "bench_ablation_certsuppress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_certsuppress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
