file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_poa.dir/bench_baseline_poa.cc.o"
  "CMakeFiles/bench_baseline_poa.dir/bench_baseline_poa.cc.o.d"
  "bench_baseline_poa"
  "bench_baseline_poa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_poa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
