# Empty compiler generated dependencies file for bench_baseline_poa.
# This may be replaced when dependencies are built.
