# Empty compiler generated dependencies file for bench_fig1_clan_sizes.
# This may be replaced when dependencies are built.
