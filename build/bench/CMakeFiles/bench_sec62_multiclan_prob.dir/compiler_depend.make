# Empty compiler generated dependencies file for bench_sec62_multiclan_prob.
# This may be replaced when dependencies are built.
