file(REMOVE_RECURSE
  "CMakeFiles/bench_sec62_multiclan_prob.dir/bench_sec62_multiclan_prob.cc.o"
  "CMakeFiles/bench_sec62_multiclan_prob.dir/bench_sec62_multiclan_prob.cc.o.d"
  "bench_sec62_multiclan_prob"
  "bench_sec62_multiclan_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec62_multiclan_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
