file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rbc.dir/bench_ablation_rbc.cc.o"
  "CMakeFiles/bench_ablation_rbc.dir/bench_ablation_rbc.cc.o.d"
  "bench_ablation_rbc"
  "bench_ablation_rbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
