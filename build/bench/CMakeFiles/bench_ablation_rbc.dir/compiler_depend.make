# Empty compiler generated dependencies file for bench_ablation_rbc.
# This may be replaced when dependencies are built.
