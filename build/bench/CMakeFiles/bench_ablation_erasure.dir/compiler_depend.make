# Empty compiler generated dependencies file for bench_ablation_erasure.
# This may be replaced when dependencies are built.
