file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_erasure.dir/bench_ablation_erasure.cc.o"
  "CMakeFiles/bench_ablation_erasure.dir/bench_ablation_erasure.cc.o.d"
  "bench_ablation_erasure"
  "bench_ablation_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
