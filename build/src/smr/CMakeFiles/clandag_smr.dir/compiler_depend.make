# Empty compiler generated dependencies file for clandag_smr.
# This may be replaced when dependencies are built.
