file(REMOVE_RECURSE
  "CMakeFiles/clandag_smr.dir/client.cc.o"
  "CMakeFiles/clandag_smr.dir/client.cc.o.d"
  "CMakeFiles/clandag_smr.dir/execution.cc.o"
  "CMakeFiles/clandag_smr.dir/execution.cc.o.d"
  "CMakeFiles/clandag_smr.dir/mempool.cc.o"
  "CMakeFiles/clandag_smr.dir/mempool.cc.o.d"
  "CMakeFiles/clandag_smr.dir/wal.cc.o"
  "CMakeFiles/clandag_smr.dir/wal.cc.o.d"
  "libclandag_smr.a"
  "libclandag_smr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clandag_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
