file(REMOVE_RECURSE
  "libclandag_smr.a"
)
