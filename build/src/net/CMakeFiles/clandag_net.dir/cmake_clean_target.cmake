file(REMOVE_RECURSE
  "libclandag_net.a"
)
