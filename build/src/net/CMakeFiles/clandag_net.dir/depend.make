# Empty dependencies file for clandag_net.
# This may be replaced when dependencies are built.
