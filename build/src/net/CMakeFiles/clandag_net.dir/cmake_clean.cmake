file(REMOVE_RECURSE
  "CMakeFiles/clandag_net.dir/inproc_transport.cc.o"
  "CMakeFiles/clandag_net.dir/inproc_transport.cc.o.d"
  "CMakeFiles/clandag_net.dir/runtime.cc.o"
  "CMakeFiles/clandag_net.dir/runtime.cc.o.d"
  "CMakeFiles/clandag_net.dir/tcp_transport.cc.o"
  "CMakeFiles/clandag_net.dir/tcp_transport.cc.o.d"
  "libclandag_net.a"
  "libclandag_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clandag_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
