file(REMOVE_RECURSE
  "libclandag_common.a"
)
