# Empty dependencies file for clandag_common.
# This may be replaced when dependencies are built.
