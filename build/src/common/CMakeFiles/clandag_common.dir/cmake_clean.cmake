file(REMOVE_RECURSE
  "CMakeFiles/clandag_common.dir/bytes.cc.o"
  "CMakeFiles/clandag_common.dir/bytes.cc.o.d"
  "CMakeFiles/clandag_common.dir/codec.cc.o"
  "CMakeFiles/clandag_common.dir/codec.cc.o.d"
  "CMakeFiles/clandag_common.dir/hex.cc.o"
  "CMakeFiles/clandag_common.dir/hex.cc.o.d"
  "CMakeFiles/clandag_common.dir/log.cc.o"
  "CMakeFiles/clandag_common.dir/log.cc.o.d"
  "libclandag_common.a"
  "libclandag_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clandag_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
