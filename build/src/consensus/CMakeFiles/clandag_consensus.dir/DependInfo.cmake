
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/clan.cc" "src/consensus/CMakeFiles/clandag_consensus.dir/clan.cc.o" "gcc" "src/consensus/CMakeFiles/clandag_consensus.dir/clan.cc.o.d"
  "/root/repo/src/consensus/committer.cc" "src/consensus/CMakeFiles/clandag_consensus.dir/committer.cc.o" "gcc" "src/consensus/CMakeFiles/clandag_consensus.dir/committer.cc.o.d"
  "/root/repo/src/consensus/dissemination.cc" "src/consensus/CMakeFiles/clandag_consensus.dir/dissemination.cc.o" "gcc" "src/consensus/CMakeFiles/clandag_consensus.dir/dissemination.cc.o.d"
  "/root/repo/src/consensus/poa_baseline.cc" "src/consensus/CMakeFiles/clandag_consensus.dir/poa_baseline.cc.o" "gcc" "src/consensus/CMakeFiles/clandag_consensus.dir/poa_baseline.cc.o.d"
  "/root/repo/src/consensus/sailfish.cc" "src/consensus/CMakeFiles/clandag_consensus.dir/sailfish.cc.o" "gcc" "src/consensus/CMakeFiles/clandag_consensus.dir/sailfish.cc.o.d"
  "/root/repo/src/consensus/wire.cc" "src/consensus/CMakeFiles/clandag_consensus.dir/wire.cc.o" "gcc" "src/consensus/CMakeFiles/clandag_consensus.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dag/CMakeFiles/clandag_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/rbc/CMakeFiles/clandag_rbc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/clandag_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/clandag_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/clandag_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clandag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
