# Empty compiler generated dependencies file for clandag_consensus.
# This may be replaced when dependencies are built.
