file(REMOVE_RECURSE
  "libclandag_consensus.a"
)
