file(REMOVE_RECURSE
  "CMakeFiles/clandag_consensus.dir/clan.cc.o"
  "CMakeFiles/clandag_consensus.dir/clan.cc.o.d"
  "CMakeFiles/clandag_consensus.dir/committer.cc.o"
  "CMakeFiles/clandag_consensus.dir/committer.cc.o.d"
  "CMakeFiles/clandag_consensus.dir/dissemination.cc.o"
  "CMakeFiles/clandag_consensus.dir/dissemination.cc.o.d"
  "CMakeFiles/clandag_consensus.dir/poa_baseline.cc.o"
  "CMakeFiles/clandag_consensus.dir/poa_baseline.cc.o.d"
  "CMakeFiles/clandag_consensus.dir/sailfish.cc.o"
  "CMakeFiles/clandag_consensus.dir/sailfish.cc.o.d"
  "CMakeFiles/clandag_consensus.dir/wire.cc.o"
  "CMakeFiles/clandag_consensus.dir/wire.cc.o.d"
  "libclandag_consensus.a"
  "libclandag_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clandag_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
