file(REMOVE_RECURSE
  "libclandag_stats.a"
)
