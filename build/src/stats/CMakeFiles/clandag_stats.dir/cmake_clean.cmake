file(REMOVE_RECURSE
  "CMakeFiles/clandag_stats.dir/clan_sizing.cc.o"
  "CMakeFiles/clandag_stats.dir/clan_sizing.cc.o.d"
  "CMakeFiles/clandag_stats.dir/logmath.cc.o"
  "CMakeFiles/clandag_stats.dir/logmath.cc.o.d"
  "CMakeFiles/clandag_stats.dir/multiclan.cc.o"
  "CMakeFiles/clandag_stats.dir/multiclan.cc.o.d"
  "libclandag_stats.a"
  "libclandag_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clandag_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
