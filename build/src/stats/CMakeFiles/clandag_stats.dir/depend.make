# Empty dependencies file for clandag_stats.
# This may be replaced when dependencies are built.
