file(REMOVE_RECURSE
  "CMakeFiles/clandag_rbc.dir/avid_rbc.cc.o"
  "CMakeFiles/clandag_rbc.dir/avid_rbc.cc.o.d"
  "CMakeFiles/clandag_rbc.dir/bracha_rbc.cc.o"
  "CMakeFiles/clandag_rbc.dir/bracha_rbc.cc.o.d"
  "CMakeFiles/clandag_rbc.dir/engine_base.cc.o"
  "CMakeFiles/clandag_rbc.dir/engine_base.cc.o.d"
  "CMakeFiles/clandag_rbc.dir/quorum.cc.o"
  "CMakeFiles/clandag_rbc.dir/quorum.cc.o.d"
  "CMakeFiles/clandag_rbc.dir/two_round_rbc.cc.o"
  "CMakeFiles/clandag_rbc.dir/two_round_rbc.cc.o.d"
  "CMakeFiles/clandag_rbc.dir/wire.cc.o"
  "CMakeFiles/clandag_rbc.dir/wire.cc.o.d"
  "libclandag_rbc.a"
  "libclandag_rbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clandag_rbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
