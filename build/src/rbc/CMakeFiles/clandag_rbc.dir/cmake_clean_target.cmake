file(REMOVE_RECURSE
  "libclandag_rbc.a"
)
