# Empty compiler generated dependencies file for clandag_rbc.
# This may be replaced when dependencies are built.
