
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rbc/avid_rbc.cc" "src/rbc/CMakeFiles/clandag_rbc.dir/avid_rbc.cc.o" "gcc" "src/rbc/CMakeFiles/clandag_rbc.dir/avid_rbc.cc.o.d"
  "/root/repo/src/rbc/bracha_rbc.cc" "src/rbc/CMakeFiles/clandag_rbc.dir/bracha_rbc.cc.o" "gcc" "src/rbc/CMakeFiles/clandag_rbc.dir/bracha_rbc.cc.o.d"
  "/root/repo/src/rbc/engine_base.cc" "src/rbc/CMakeFiles/clandag_rbc.dir/engine_base.cc.o" "gcc" "src/rbc/CMakeFiles/clandag_rbc.dir/engine_base.cc.o.d"
  "/root/repo/src/rbc/quorum.cc" "src/rbc/CMakeFiles/clandag_rbc.dir/quorum.cc.o" "gcc" "src/rbc/CMakeFiles/clandag_rbc.dir/quorum.cc.o.d"
  "/root/repo/src/rbc/two_round_rbc.cc" "src/rbc/CMakeFiles/clandag_rbc.dir/two_round_rbc.cc.o" "gcc" "src/rbc/CMakeFiles/clandag_rbc.dir/two_round_rbc.cc.o.d"
  "/root/repo/src/rbc/wire.cc" "src/rbc/CMakeFiles/clandag_rbc.dir/wire.cc.o" "gcc" "src/rbc/CMakeFiles/clandag_rbc.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/clandag_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/clandag_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/clandag_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/clandag_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
