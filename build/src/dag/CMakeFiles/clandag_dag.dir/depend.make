# Empty dependencies file for clandag_dag.
# This may be replaced when dependencies are built.
