file(REMOVE_RECURSE
  "CMakeFiles/clandag_dag.dir/dag_store.cc.o"
  "CMakeFiles/clandag_dag.dir/dag_store.cc.o.d"
  "CMakeFiles/clandag_dag.dir/types.cc.o"
  "CMakeFiles/clandag_dag.dir/types.cc.o.d"
  "libclandag_dag.a"
  "libclandag_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clandag_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
