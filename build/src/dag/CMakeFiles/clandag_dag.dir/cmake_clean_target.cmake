file(REMOVE_RECURSE
  "libclandag_dag.a"
)
