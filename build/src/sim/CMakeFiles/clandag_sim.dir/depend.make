# Empty dependencies file for clandag_sim.
# This may be replaced when dependencies are built.
