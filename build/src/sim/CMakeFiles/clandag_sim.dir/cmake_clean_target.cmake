file(REMOVE_RECURSE
  "libclandag_sim.a"
)
