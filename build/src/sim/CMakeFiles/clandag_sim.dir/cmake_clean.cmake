file(REMOVE_RECURSE
  "CMakeFiles/clandag_sim.dir/latency.cc.o"
  "CMakeFiles/clandag_sim.dir/latency.cc.o.d"
  "CMakeFiles/clandag_sim.dir/network.cc.o"
  "CMakeFiles/clandag_sim.dir/network.cc.o.d"
  "CMakeFiles/clandag_sim.dir/scheduler.cc.o"
  "CMakeFiles/clandag_sim.dir/scheduler.cc.o.d"
  "libclandag_sim.a"
  "libclandag_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clandag_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
