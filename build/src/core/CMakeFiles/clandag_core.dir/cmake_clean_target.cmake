file(REMOVE_RECURSE
  "libclandag_core.a"
)
