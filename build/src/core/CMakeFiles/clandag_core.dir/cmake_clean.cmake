file(REMOVE_RECURSE
  "CMakeFiles/clandag_core.dir/app_node.cc.o"
  "CMakeFiles/clandag_core.dir/app_node.cc.o.d"
  "CMakeFiles/clandag_core.dir/byzantine.cc.o"
  "CMakeFiles/clandag_core.dir/byzantine.cc.o.d"
  "CMakeFiles/clandag_core.dir/metrics.cc.o"
  "CMakeFiles/clandag_core.dir/metrics.cc.o.d"
  "CMakeFiles/clandag_core.dir/scenario.cc.o"
  "CMakeFiles/clandag_core.dir/scenario.cc.o.d"
  "libclandag_core.a"
  "libclandag_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clandag_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
