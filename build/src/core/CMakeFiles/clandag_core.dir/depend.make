# Empty dependencies file for clandag_core.
# This may be replaced when dependencies are built.
