file(REMOVE_RECURSE
  "libclandag_crypto.a"
)
