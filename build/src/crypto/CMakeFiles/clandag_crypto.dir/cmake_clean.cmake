file(REMOVE_RECURSE
  "CMakeFiles/clandag_crypto.dir/digest.cc.o"
  "CMakeFiles/clandag_crypto.dir/digest.cc.o.d"
  "CMakeFiles/clandag_crypto.dir/hmac.cc.o"
  "CMakeFiles/clandag_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/clandag_crypto.dir/keychain.cc.o"
  "CMakeFiles/clandag_crypto.dir/keychain.cc.o.d"
  "CMakeFiles/clandag_crypto.dir/multisig.cc.o"
  "CMakeFiles/clandag_crypto.dir/multisig.cc.o.d"
  "CMakeFiles/clandag_crypto.dir/reed_solomon.cc.o"
  "CMakeFiles/clandag_crypto.dir/reed_solomon.cc.o.d"
  "CMakeFiles/clandag_crypto.dir/sha256.cc.o"
  "CMakeFiles/clandag_crypto.dir/sha256.cc.o.d"
  "libclandag_crypto.a"
  "libclandag_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clandag_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
