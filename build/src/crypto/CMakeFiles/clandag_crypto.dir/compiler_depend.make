# Empty compiler generated dependencies file for clandag_crypto.
# This may be replaced when dependencies are built.
