file(REMOVE_RECURSE
  "CMakeFiles/geo_cluster_sim.dir/geo_cluster_sim.cpp.o"
  "CMakeFiles/geo_cluster_sim.dir/geo_cluster_sim.cpp.o.d"
  "geo_cluster_sim"
  "geo_cluster_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_cluster_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
