# Empty dependencies file for geo_cluster_sim.
# This may be replaced when dependencies are built.
