# Empty compiler generated dependencies file for shared_sequencer.
# This may be replaced when dependencies are built.
