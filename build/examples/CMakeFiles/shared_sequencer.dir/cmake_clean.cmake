file(REMOVE_RECURSE
  "CMakeFiles/shared_sequencer.dir/shared_sequencer.cpp.o"
  "CMakeFiles/shared_sequencer.dir/shared_sequencer.cpp.o.d"
  "shared_sequencer"
  "shared_sequencer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_sequencer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
